//! E9 — the RNC / low-depth claim, measured as self-relative speedup.
//!
//! Depth is not directly observable on a multicore, so the proxy is wall-clock scaling
//! with the number of rayon threads on a fixed instance: each algorithm is run with
//! 1, 2, 4, … threads (up to the machine's logical cores) and the table reports the
//! time and the speedup relative to the single-threaded run of the *same parallel
//! implementation*.

use parfaclo_bench::{f3, timed, Table};
use parfaclo_core::{greedy, primal_dual, FlConfig};
use parfaclo_kclustering::{parallel_kcenter, parallel_kmedian, LocalSearchConfig};
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::gen::{self, GenParams};

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut v = vec![1usize];
    let mut t = 2;
    while t < max {
        v.push(t);
        t *= 2;
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

fn main() {
    println!("E9: self-relative speedup vs rayon thread count\n");
    let fl = gen::facility_location(GenParams::uniform_square(512, 256).with_seed(1));
    let cl = gen::clustering(GenParams::uniform_square(400, 400).with_seed(1));
    let cfg = FlConfig::new(0.1).with_seed(1).with_policy(ExecPolicy::Parallel);
    let ls = LocalSearchConfig::new(0.1).with_seed(1).with_policy(ExecPolicy::Parallel);

    let table = Table::new(&["algorithm", "threads", "time_ms", "speedup"]);
    let mut baselines: Vec<(String, f64)> = Vec::new();

    for threads in thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let runs: Vec<(&str, f64)> = pool.install(|| {
            vec![
                ("parallel greedy", timed(|| greedy::parallel_greedy(&fl, &cfg)).1),
                (
                    "parallel primal-dual",
                    timed(|| primal_dual::parallel_primal_dual(&fl, &cfg)).1,
                ),
                (
                    "parallel k-center",
                    timed(|| parallel_kcenter(&cl, 8, 1, ExecPolicy::Parallel)).1,
                ),
                (
                    "parallel k-median",
                    timed(|| parallel_kmedian(&cl, 8, &ls)).1,
                ),
            ]
        });
        for (name, ms) in runs {
            if threads == 1 {
                baselines.push((name.to_string(), ms));
            }
            let base = baselines
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, b)| *b)
                .unwrap_or(ms);
            table.row(&[
                name.to_string(),
                threads.to_string(),
                format!("{ms:.0}"),
                f3(base / ms),
            ]);
        }
    }
    println!("\nspeedup is relative to the same implementation on 1 thread.");
}
