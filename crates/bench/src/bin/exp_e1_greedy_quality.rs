//! E1 — Theorem 4.9 / §1.1: quality of the parallel greedy algorithm.
//!
//! For every workload of the standard suite and a range of sizes and ε values, report
//! the parallel greedy cost, the sequential JMS greedy cost, a certified lower bound
//! (LP value when m is small enough, otherwise the dual certificate), and the resulting
//! ratios. The paper's guarantee is (3.722 + ε); the measured certified ratios should
//! sit far below it and close to the sequential greedy.

use parfaclo_bench::{f3, Table};
use parfaclo_core::{greedy, verify, FlConfig};
use parfaclo_metric::gen::{self, standard_suite};
use parfaclo_seq_baselines::jms_greedy;

fn main() {
    println!("E1: parallel greedy quality (guarantee: 3.722 + eps; LP-free analysis: 6 + eps)\n");
    let table = Table::new(&[
        "workload", "n_c", "n_f", "eps", "par_cost", "seq_cost", "lower_bnd", "par_ratio",
        "par/seq",
    ]);
    for &size in &[32usize, 64, 128] {
        for wl in standard_suite(size, size / 2, 1000 + size as u64) {
            let inst = gen::facility_location(wl.params);
            let seq = jms_greedy(&inst);
            for &eps in &[0.1, 0.5] {
                let cfg = FlConfig::new(eps).with_seed(7);
                let sol = greedy::parallel_greedy(&inst, &cfg);
                let lb = verify::instance_lower_bound(&inst, 32 * 16)
                    .best()
                    .max(sol.lower_bound);
                table.row(&[
                    wl.name.to_string(),
                    size.to_string(),
                    (size / 2).to_string(),
                    format!("{eps}"),
                    f3(sol.cost),
                    f3(seq.cost),
                    f3(lb),
                    f3(sol.cost / lb),
                    f3(sol.cost / seq.cost),
                ]);
            }
        }
    }
    println!("\npar_ratio is certified (cost / valid lower bound); the guarantee is 3.722 + eps.");
}
