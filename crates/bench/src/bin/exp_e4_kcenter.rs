//! E4 — Theorem 6.1: the parallel Hochbaum–Shmoys k-center algorithm is a
//! 2-approximation with `O((n log n)²)` work.
//!
//! The table reports the parallel radius, the Gonzalez and sequential Hochbaum–Shmoys
//! radii, the combinatorial lower bound (half the min pairwise distance among k+1
//! spread-out nodes), the certified ratio (guarantee 2), the number of binary-search
//! probes (≤ log₂ of the number of distinct distances), and measured work divided by
//! `(n log n)²`.

use parfaclo_bench::{f3, Table};
use parfaclo_kclustering::parallel_kcenter;
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::gen::{self, standard_suite};
use parfaclo_metric::lower_bounds::kcenter_lower_bound;
use parfaclo_seq_baselines::{gonzalez_kcenter, hochbaum_shmoys_kcenter};

fn main() {
    println!("E4: parallel k-center (guarantee: 2)\n");
    let table = Table::new(&[
        "workload",
        "n",
        "k",
        "par_radius",
        "gonzalez",
        "seq_hs",
        "lower_bnd",
        "ratio",
        "probes",
        "work/(nlogn)^2",
    ]);
    for &n in &[64usize, 128, 256] {
        for wl in standard_suite(n, n, 3000 + n as u64) {
            let inst = gen::clustering(wl.params);
            for &k in &[4usize, 10] {
                let par = parallel_kcenter(&inst, k, 9, ExecPolicy::Parallel);
                let gonz = gonzalez_kcenter(&inst, k);
                let hs = hochbaum_shmoys_kcenter(&inst, k);
                let lb = kcenter_lower_bound(&inst, k);
                let denom = (n as f64 * (n as f64).ln()).powi(2);
                table.row(&[
                    wl.name.to_string(),
                    n.to_string(),
                    k.to_string(),
                    f3(par.radius),
                    f3(gonz.radius),
                    f3(hs.radius),
                    f3(lb),
                    if lb > 0.0 {
                        f3(par.radius / lb)
                    } else {
                        "-".into()
                    },
                    par.probes.to_string(),
                    format!("{:.4}", par.work.element_ops as f64 / denom),
                ]);
            }
        }
    }
    println!("\nratio is certified against a valid lower bound; the guarantee is 2.");
}
