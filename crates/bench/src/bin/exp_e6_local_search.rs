//! E6 — Theorem 7.1: the parallel local search is a (5 + ε)-approximation for k-median
//! ((81 + ε) for k-means) and needs `O(k·log n / ε)` swap rounds when started from the
//! k-center solution.
//!
//! The table reports parallel and sequential local-search costs, a valid lower bound
//! (brute force where feasible, the nearest-neighbour bound otherwise), the certified
//! ratio, the number of swap rounds, and the theoretical round budget
//! `log(initial/final) / log(1/(1−β/k))`.

use parfaclo_bench::{f1, f3, Table};
use parfaclo_kclustering::{parallel_kmeans, parallel_kmedian, LocalSearchConfig};
use parfaclo_metric::gen::{self, standard_suite};
use parfaclo_metric::lower_bounds::{self, ClusterObjective};
use parfaclo_seq_baselines::local_search_kmedian;

fn main() {
    let eps = 0.1;
    println!("E6: parallel local search for k-median / k-means (guarantees: 5+eps / 81+eps)\n");
    let table = Table::new(&[
        "workload", "n", "k", "obj", "par_cost", "seq_cost", "lower_bnd", "ratio", "rounds",
        "round_bound",
    ]);
    for &n in &[32usize, 64, 128] {
        for wl in standard_suite(n, n, 5000 + n as u64) {
            let inst = gen::clustering(wl.params);
            for &k in &[3usize, 6] {
                let cfg = LocalSearchConfig::new(eps).with_seed(13);
                let med = parallel_kmedian(&inst, k, &cfg);
                let seq = local_search_kmedian(&inst, k, eps);
                let lb = if n <= 32 && k <= 3 {
                    lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KMedian).1
                } else {
                    lower_bounds::kmedian_lower_bound(&inst, k)
                };
                let beta = eps / (1.0 + eps);
                let per = 1.0 / (1.0 - beta / k as f64);
                let bound = (med.initial_cost / med.cost.max(1e-12)).ln() / per.ln();
                table.row(&[
                    wl.name.to_string(),
                    n.to_string(),
                    k.to_string(),
                    "k-median".into(),
                    f3(med.cost),
                    f3(seq.cost),
                    f3(lb),
                    if lb > 0.0 { f3(med.cost / lb) } else { "-".into() },
                    med.rounds.to_string(),
                    f1(bound.max(0.0)),
                ]);

                let means = parallel_kmeans(&inst, k, &cfg);
                table.row(&[
                    wl.name.to_string(),
                    n.to_string(),
                    k.to_string(),
                    "k-means".into(),
                    f3(means.cost),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    means.rounds.to_string(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("\nk-median ratio is vs a valid lower bound (brute force on the smallest rows).");
}
