//! E10 — ablations of the design choices DESIGN.md calls out:
//!
//! * **ε slack**: quality / round-count trade-off as ε varies (ε → 0 approaches the
//!   sequential behaviour; large ε gives few rounds and a worse constant).
//! * **Preprocessing on/off** (γ/m² cheap stars for greedy, free facilities for
//!   primal-dual): effect on round counts and quality.
//! * **Subselection vote threshold on/off** for the greedy algorithm: removing the
//!   `deg/(2(1+ε))` requirement voids the dual-fitting argument; the ablation measures
//!   how much quality is actually lost.

use parfaclo_bench::{f3, Table};
use parfaclo_core::{greedy, primal_dual, FlConfig};
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::{jain_vazirani, jms_greedy};

fn main() {
    let inst = gen::facility_location(GenParams::uniform_square(128, 64).with_seed(12));
    println!(
        "E10 ablations on a {}x{} uniform instance\n",
        inst.num_clients(),
        inst.num_facilities()
    );

    println!("(a) epsilon sweep:");
    let t = Table::new(&[
        "eps", "greedy_cost", "greedy_rounds", "pd_cost", "pd_rounds", "seq_jms", "seq_jv",
    ]);
    let seq_g = jms_greedy(&inst);
    let seq_jv = jain_vazirani(&inst);
    for &eps in &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let g = greedy::parallel_greedy(&inst, &FlConfig::new(eps).with_seed(2));
        let pd = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(eps).with_seed(2));
        t.row(&[
            format!("{eps}"),
            f3(g.cost),
            g.rounds.to_string(),
            f3(pd.cost),
            pd.rounds.to_string(),
            f3(seq_g.cost),
            f3(seq_jv.cost),
        ]);
    }

    println!("\n(b) preprocessing on/off (eps = 0.1):");
    let t2 = Table::new(&["algorithm", "preprocess", "cost", "rounds"]);
    for &pre in &[true, false] {
        let cfg = FlConfig::new(0.1).with_seed(2).with_preprocess(pre);
        let g = greedy::parallel_greedy(&inst, &cfg);
        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        t2.row(&[
            "greedy".into(),
            pre.to_string(),
            f3(g.cost),
            g.rounds.to_string(),
        ]);
        t2.row(&[
            "primal-dual".into(),
            pre.to_string(),
            f3(pd.cost),
            pd.rounds.to_string(),
        ]);
    }

    println!("\n(c) greedy subselection vote threshold on/off (eps = 0.1):");
    let t3 = Table::new(&["subselection", "cost", "open_facilities", "rounds"]);
    for &sub in &[true, false] {
        let cfg = FlConfig::new(0.1).with_seed(2).with_subselection(sub);
        let g = greedy::parallel_greedy(&inst, &cfg);
        t3.row(&[
            sub.to_string(),
            f3(g.cost),
            g.open.len().to_string(),
            g.rounds.to_string(),
        ]);
    }
    println!("\nSmaller eps should approach the sequential costs at the price of more rounds;");
    println!("disabling preprocessing may increase rounds; disabling subselection opens more");
    println!("facilities and degrades quality.");
}
