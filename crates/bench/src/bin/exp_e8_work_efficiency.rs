//! E8 — §1.1 "near work efficiency": the parallel algorithms do work within a
//! logarithmic factor of their sequential counterparts.
//!
//! Measured element operations of the parallel greedy and primal-dual algorithms are
//! compared against the sequential cost models (`O(m log m)` for both JMS greedy and
//! Jain–Vazirani): the table reports work / (m log m) for the parallel algorithms and
//! the extra logarithmic factor the paper predicts (`log_{1+ε} m` for greedy's
//! subselection).

use parfaclo_bench::{f3, log1p_eps, Table};
use parfaclo_core::{greedy, primal_dual, FlConfig};
use parfaclo_metric::gen::{self, GenParams};

fn main() {
    let eps = 0.1;
    println!("E8: work efficiency relative to the sequential algorithms (eps = {eps})\n");
    let table = Table::new(&[
        "n",
        "m",
        "greedy_work",
        "greedy/(m*logm)",
        "greedy/(m*log*log)",
        "pd_work",
        "pd/(m*logm)",
        "pd/(m*log_eps)",
    ]);
    for &size in &[16usize, 32, 64, 128, 256] {
        let inst = gen::facility_location(GenParams::uniform_square(size, size).with_seed(8));
        let m = inst.m() as f64;
        let cfg = FlConfig::new(eps).with_seed(8);
        let g = greedy::parallel_greedy(&inst, &cfg);
        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        let logm = m.ln();
        let logeps = log1p_eps(m, eps);
        table.row(&[
            size.to_string(),
            (size * size).to_string(),
            g.work.element_ops.to_string(),
            f3(g.work.element_ops as f64 / (m * logm)),
            f3(g.work.element_ops as f64 / (m * logeps * logeps)),
            pd.work.element_ops.to_string(),
            f3(pd.work.element_ops as f64 / (m * logm)),
            f3(pd.work.element_ops as f64 / (m * logeps)),
        ]);
    }
    println!();
    println!("The paper predicts greedy work Θ(m·log²_(1+eps) m) and primal-dual work");
    println!("Θ(m·log_(1+eps) m); the corresponding normalised columns should be roughly flat,");
    println!("while the /(m·log m) columns grow by the extra log_(1+eps)/ln factor.");
}
