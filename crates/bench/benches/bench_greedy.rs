//! Criterion bench for experiment E1/E2: wall-clock time of the parallel greedy
//! algorithm (Algorithm 4.1) vs the sequential JMS greedy across instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_core::{greedy, FlConfig};
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::jms_greedy;

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    group.sample_size(10);
    for &size in &[32usize, 64, 128] {
        let inst = gen::facility_location(GenParams::uniform_square(size, size).with_seed(1));
        let cfg = FlConfig::new(0.1).with_seed(1);
        group.bench_with_input(
            BenchmarkId::new("parallel_alg41", size),
            &inst,
            |b, inst| b.iter(|| greedy::parallel_greedy(inst, &cfg)),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_jms", size),
            &inst,
            |b, inst| b.iter(|| jms_greedy(inst)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
