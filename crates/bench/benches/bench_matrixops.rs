//! Criterion bench for the PRAM-style substrate: sequential vs parallel reductions,
//! scans and row sorts over dense matrices (the building blocks whose counts the paper's
//! work bounds are expressed in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_matrixops::{ops, scan, sort, CostMeter, ExecPolicy};

fn bench_matrixops(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrixops");
    group.sample_size(10);
    for &n in &[1usize << 16, 1 << 20] {
        let data: Vec<f64> = (0..n).map(|x| ((x * 2654435761) % 1000) as f64).collect();
        let meter = CostMeter::new();
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
            let label = format!("{policy:?}");
            group.bench_with_input(
                BenchmarkId::new(format!("reduce_{label}"), n),
                &data,
                |b, d| b.iter(|| ops::reduce(d, ops::AssocOp::Add, policy, &meter)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scan_{label}"), n),
                &data,
                |b, d| b.iter(|| scan::inclusive_scan(d, ops::AssocOp::Add, policy, &meter)),
            );
        }
    }
    // Row sort: a 256x1024 matrix (the greedy presort shape).
    let rows = 256;
    let cols = 1024;
    let data: Vec<f64> = (0..rows * cols)
        .map(|x| ((x * 48271) % 7919) as f64)
        .collect();
    let meter = CostMeter::new();
    for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
        group.bench_with_input(
            BenchmarkId::new(format!("argsort_rows_{policy:?}"), rows * cols),
            &data,
            |b, d| b.iter(|| sort::argsort_rows(d, rows, cols, policy, &meter)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matrixops);
criterion_main!(benches);
