//! Criterion bench for experiment E7: wall-clock time of the in-place dominator-set
//! algorithms (MaxDom / MaxUDom) on random graphs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_dominator::{max_dom, max_u_dom, BipartiteGraph, DenseGraph};
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_graph(n: usize, p: f64, seed: u64) -> DenseGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = DenseGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

fn bench_dominator(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominator");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let g = random_graph(n, 0.02, 7);
        group.bench_with_input(BenchmarkId::new("max_dom", n), &g, |b, g| {
            let meter = CostMeter::new();
            b.iter(|| max_dom(g, 1, ExecPolicy::Parallel, &meter))
        });
        let h = BipartiteGraph::from_predicate(n, n / 2, |u, v| (u * 31 + v * 17) % 29 == 0);
        group.bench_with_input(BenchmarkId::new("max_u_dom", n), &h, |b, h| {
            let meter = CostMeter::new();
            b.iter(|| max_u_dom(h, 1, ExecPolicy::Parallel, &meter))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dominator);
criterion_main!(benches);
