//! Criterion bench for experiment E4: wall-clock time of the parallel k-center
//! algorithm vs Gonzalez and the sequential Hochbaum–Shmoys baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_kclustering::parallel_kcenter;
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::{gonzalez_kcenter, hochbaum_shmoys_kcenter};

fn bench_kcenter(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcenter");
    group.sample_size(10);
    let k = 8;
    for &n in &[64usize, 128, 256] {
        let inst = gen::clustering(GenParams::uniform_square(n, n).with_seed(3));
        group.bench_with_input(BenchmarkId::new("parallel_hs", n), &inst, |b, inst| {
            b.iter(|| parallel_kcenter(inst, k, 1, ExecPolicy::Parallel))
        });
        group.bench_with_input(BenchmarkId::new("gonzalez", n), &inst, |b, inst| {
            b.iter(|| gonzalez_kcenter(inst, k))
        });
        group.bench_with_input(BenchmarkId::new("sequential_hs", n), &inst, |b, inst| {
            b.iter(|| hochbaum_shmoys_kcenter(inst, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kcenter);
criterion_main!(benches);
