//! Criterion bench for experiment E6: wall-clock time of the parallel local search for
//! k-median / k-means vs the sequential local search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_kclustering::{parallel_kmeans, parallel_kmedian, LocalSearchConfig};
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::local_search_kmedian;

fn bench_kmedian(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmedian");
    group.sample_size(10);
    let k = 5;
    for &n in &[48usize, 96] {
        let inst = gen::clustering(GenParams::gaussian_clusters(n, n, k).with_seed(4));
        let cfg = LocalSearchConfig::new(0.1).with_seed(4);
        group.bench_with_input(BenchmarkId::new("parallel_kmedian", n), &inst, |b, inst| {
            b.iter(|| parallel_kmedian(inst, k, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("parallel_kmeans", n), &inst, |b, inst| {
            b.iter(|| parallel_kmeans(inst, k, &cfg))
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_kmedian", n),
            &inst,
            |b, inst| b.iter(|| local_search_kmedian(inst, k, 0.1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kmedian);
criterion_main!(benches);
