//! Criterion bench for experiment E9: the parallel primal-dual algorithm on a fixed
//! instance under rayon pools of different sizes (self-relative speedup / depth proxy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_core::{primal_dual, FlConfig};
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::gen::{self, GenParams};

fn bench_speedup(c: &mut Criterion) {
    // The offline rayon shim is a real fork-join runtime: each pool below
    // fans work out over its requested number of threads, and results are
    // byte-identical across pool sizes by construction (fixed chunk
    // boundaries, left-to-right combines), so the rows measure genuine
    // self-relative scaling.
    let mut group = c.benchmark_group("speedup_primal_dual_256x256");
    group.sample_size(10);
    let inst = gen::facility_location(GenParams::uniform_square(256, 256).with_seed(6));
    let cfg = FlConfig::new(0.1)
        .with_seed(6)
        .with_policy(ExecPolicy::Parallel);
    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut threads = vec![1usize, 2, 4];
    if !threads.contains(&max_threads) {
        threads.push(max_threads);
    }
    for &t in threads.iter().filter(|&&t| t <= max_threads) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool");
        group.bench_with_input(BenchmarkId::new("threads", t), &inst, |b, inst| {
            b.iter(|| pool.install(|| primal_dual::parallel_primal_dual(inst, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
