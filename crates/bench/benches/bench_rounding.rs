//! Criterion bench for experiment E5: wall-clock time of the parallel rounding phase
//! (the LP solve is done once outside the measurement, exactly as the paper assumes the
//! optimal LP solution is given).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_core::{lp_rounding, FlConfig};
use parfaclo_lp::solve_facility_lp;
use parfaclo_metric::gen::{self, GenParams};

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_rounding");
    group.sample_size(10);
    for &(nc, nf) in &[(12usize, 6usize), (20, 10)] {
        let inst = gen::facility_location(GenParams::uniform_square(nc, nf).with_seed(5));
        let lp = solve_facility_lp(&inst).expect("lp");
        let cfg = FlConfig::new(0.1).with_seed(5);
        group.bench_with_input(
            BenchmarkId::new("parallel_rounding", format!("{nc}x{nf}")),
            &(inst, lp),
            |b, (inst, lp)| b.iter(|| lp_rounding::parallel_lp_rounding(inst, lp, &cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rounding);
criterion_main!(benches);
