//! Registry-driven bench: every solver in the standard registry timed on the
//! same pair of generated instances, demonstrating that the unified API is
//! enough to drive a whole benchmark suite without naming any solver type.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_api::{AnyInstance, ProblemKind, RunConfig};
use parfaclo_bench::standard_registry;
use parfaclo_metric::gen::{self, GenParams};

fn bench_registry(c: &mut Criterion) {
    let registry = standard_registry();
    let fl = AnyInstance::Fl(gen::facility_location(
        GenParams::uniform_square(48, 24).with_seed(5),
    ));
    let cluster = AnyInstance::Cluster(gen::clustering(
        GenParams::uniform_square(48, 48).with_seed(5),
    ));
    let cfg = RunConfig::new(0.1).with_seed(5).with_k(4);

    let mut group = c.benchmark_group("registry");
    group.sample_size(10);
    for solver in registry.iter() {
        // lp-rounding solves a full LP; keep the bench interactive.
        if solver.name() == "lp-rounding" {
            continue;
        }
        let inst = match solver.problem() {
            ProblemKind::FacilityLocation => &fl,
            ProblemKind::KClustering | ProblemKind::DominatorSet => &cluster,
        };
        group.bench_with_input(BenchmarkId::new(solver.name(), 48), inst, |b, inst| {
            b.iter(|| solver.run(inst, &cfg).expect("instance kind matches"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_registry);
criterion_main!(benches);
