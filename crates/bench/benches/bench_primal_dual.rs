//! Criterion bench for experiment E3: wall-clock time of the parallel primal-dual
//! algorithm (Algorithm 5.1) vs the sequential Jain–Vazirani simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfaclo_core::{primal_dual, FlConfig};
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::jain_vazirani;

fn bench_primal_dual(c: &mut Criterion) {
    let mut group = c.benchmark_group("primal_dual");
    group.sample_size(10);
    for &size in &[32usize, 64, 128] {
        let inst = gen::facility_location(GenParams::uniform_square(size, size).with_seed(2));
        let cfg = FlConfig::new(0.1).with_seed(2);
        group.bench_with_input(
            BenchmarkId::new("parallel_alg51", size),
            &inst,
            |b, inst| b.iter(|| primal_dual::parallel_primal_dual(inst, &cfg)),
        );
        group.bench_with_input(BenchmarkId::new("sequential_jv", size), &inst, |b, inst| {
            b.iter(|| jain_vazirani(inst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primal_dual);
criterion_main!(benches);
