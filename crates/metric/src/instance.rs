//! Problem instances: facility location and k-clustering.

use crate::coreset::BuildError;
use crate::distmat::DistanceMatrix;
use crate::oracle::{Backend, DistanceOracle, ImplicitMetric, Oracle, SpatialOracle};
use crate::point::{DistanceKind, Point};
use crate::{ClientId, FacilityId, NodeId};

/// An instance of (metric, uncapacitated) facility location.
///
/// Matches the setup of Section 2 of the paper: a facility set `F` with opening costs
/// `f_i`, a client set `C`, and distances `d(j, i)` between clients and facilities,
/// with rows indexed by clients and columns by facilities. The instance size in the
/// paper's work bounds is `m = |C| * |F|` ([`FlInstance::m`]).
///
/// Distances are served by a [`DistanceOracle`] with three interchangeable
/// backends behind one backend-parameterized constructor
/// ([`FlInstance::build`]): the classic dense `|C| x |F|` matrix, an
/// implicit geometric backend computing distances on demand from stored
/// [`Point`]s in `O(|C| + |F|)` memory, or the index-accelerated spatial
/// backend answering nearest/range queries sublinearly at the same memory
/// order. All produce bit-identical distances for the same point set, so
/// solvers behave identically under any of them.
///
/// Instances built by the generators also carry the underlying [`Point`]s, which is
/// convenient for examples and for validating the metric axioms; instances built
/// directly from a matrix may omit them.
#[derive(Debug, Clone)]
pub struct FlInstance {
    facility_costs: Vec<f64>,
    oracle: Oracle,
    client_points: Option<Vec<Point>>,
    facility_points: Option<Vec<Point>>,
}

impl FlInstance {
    /// Creates a dense-backend instance from facility opening costs and a client x
    /// facility distance matrix.
    ///
    /// # Panics
    /// Panics if the number of facility costs does not match the number of columns of
    /// `dist`, or if any facility cost is negative or non-finite.
    pub fn new(facility_costs: Vec<f64>, dist: DistanceMatrix) -> Self {
        Self::with_oracle(facility_costs, Oracle::Dense(dist))
    }

    /// Creates an instance around an explicit [`Oracle`] backend.
    ///
    /// # Panics
    /// Panics if the number of facility costs does not match the oracle's column
    /// count, or if any facility cost is negative or non-finite.
    pub fn with_oracle(facility_costs: Vec<f64>, oracle: Oracle) -> Self {
        assert_eq!(
            facility_costs.len(),
            oracle.cols(),
            "facility cost vector length must equal number of matrix columns"
        );
        assert!(
            facility_costs.iter().all(|f| f.is_finite() && *f >= 0.0),
            "facility costs must be finite and non-negative"
        );
        FlInstance {
            facility_costs,
            oracle,
            client_points: None,
            facility_points: None,
        }
    }

    /// The backend-parameterized constructor: builds an instance from point
    /// sets under the requested [`Backend`].
    ///
    /// * [`Backend::Dense`] materialises the `|C| x |F|` matrix (`O(m)`
    ///   memory; overflowing shapes come back as a typed [`BuildError`])
    ///   and keeps the points attached for provenance.
    /// * [`Backend::Implicit`] stores only the points and computes every
    ///   `d(j, i)` on demand — `O(|C| + |F|)` memory.
    /// * [`Backend::Spatial`] adds deterministic exact spatial indexes over
    ///   both sides, so nearest/range queries run sublinearly at the same
    ///   memory order.
    ///
    /// All three serve bit-identical distances for the same point set.
    ///
    /// # Panics
    /// Panics if the number of facility costs does not match the number of
    /// facility points, or if any facility cost is negative or non-finite.
    pub fn build(
        facility_costs: Vec<f64>,
        client_points: Vec<Point>,
        facility_points: Vec<Point>,
        kind: DistanceKind,
        backend: Backend,
    ) -> Result<Self, BuildError> {
        match backend {
            Backend::Dense => {
                let dist = DistanceMatrix::try_between(&client_points, &facility_points, kind)?;
                Ok(FlInstance::new(facility_costs, dist)
                    .with_points(client_points, facility_points))
            }
            Backend::Implicit => Ok(Self::with_oracle(
                facility_costs,
                Oracle::Implicit(ImplicitMetric::between(
                    client_points,
                    facility_points,
                    kind,
                )),
            )),
            Backend::Spatial => Ok(Self::with_oracle(
                facility_costs,
                Oracle::Spatial(SpatialOracle::between(client_points, facility_points, kind)),
            )),
        }
    }

    /// Creates an instance from explicit client and facility point sets, Euclidean
    /// distances, and facility opening costs, materialising the dense matrix. Use
    /// [`FlInstance::build`] with [`Backend::Implicit`] to keep memory at
    /// `O(|C| + |F|)` instead.
    pub fn from_points(
        facility_costs: Vec<f64>,
        client_points: Vec<Point>,
        facility_points: Vec<Point>,
    ) -> Self {
        let dist = DistanceMatrix::between(
            &client_points,
            &facility_points,
            crate::point::DistanceKind::Euclidean,
        );
        let mut inst = FlInstance::new(facility_costs, dist);
        inst.client_points = Some(client_points);
        inst.facility_points = Some(facility_points);
        inst
    }

    /// Attaches provenance points to an instance built from a matrix.
    pub fn with_points(mut self, client_points: Vec<Point>, facility_points: Vec<Point>) -> Self {
        assert_eq!(client_points.len(), self.num_clients());
        assert_eq!(facility_points.len(), self.num_facilities());
        self.client_points = Some(client_points);
        self.facility_points = Some(facility_points);
        self
    }

    /// Number of clients `|C|` (`nc` in the paper).
    #[inline]
    pub fn num_clients(&self) -> usize {
        self.oracle.rows()
    }

    /// Number of facilities `|F|` (`nf` in the paper).
    #[inline]
    pub fn num_facilities(&self) -> usize {
        self.oracle.cols()
    }

    /// The paper's input-size parameter `m = nc * nf`.
    #[inline]
    pub fn m(&self) -> usize {
        self.num_clients() * self.num_facilities()
    }

    /// Opening cost of facility `i`.
    #[inline]
    pub fn facility_cost(&self, i: FacilityId) -> f64 {
        self.facility_costs[i]
    }

    /// All facility opening costs.
    #[inline]
    pub fn facility_costs(&self) -> &[f64] {
        &self.facility_costs
    }

    /// The distance `d(j, i)` from client `j` to facility `i`.
    #[inline]
    pub fn dist(&self, j: ClientId, i: FacilityId) -> f64 {
        self.oracle.dist(j, i)
    }

    /// The distance oracle serving `d(j, i)` queries (dense or implicit).
    #[inline]
    pub fn distances(&self) -> &Oracle {
        &self.oracle
    }

    /// Which backend serves the distances.
    #[inline]
    pub fn backend(&self) -> Backend {
        self.oracle.backend()
    }

    /// Estimated resident bytes of the distance storage (see
    /// [`DistanceOracle::memory_bytes`]).
    pub fn memory_bytes(&self) -> u64 {
        self.oracle.memory_bytes()
    }

    /// Distances from client `j` to every facility, collected into a vector
    /// (`O(|F|)` work under either backend).
    pub fn client_row(&self, j: ClientId) -> Vec<f64> {
        self.oracle.row_to_vec(j)
    }

    /// The client points, if the instance carries geometry (always for the
    /// implicit and spatial backends).
    pub fn client_points(&self) -> Option<&[Point]> {
        match &self.oracle {
            Oracle::Dense(_) => self.client_points.as_deref(),
            other => other.as_implicit().map(ImplicitMetric::from_points),
        }
    }

    /// The facility points, if the instance carries geometry (always for the
    /// implicit and spatial backends).
    pub fn facility_points(&self) -> Option<&[Point]> {
        match &self.oracle {
            Oracle::Dense(_) => self.facility_points.as_deref(),
            other => other.as_implicit().map(ImplicitMetric::to_points),
        }
    }

    /// `d(j, S) = min_{i in S} d(j, i)` — distance from client `j` to the closest open
    /// facility in `open`, together with the argmin facility (equidistant ties towards
    /// the lowest facility index, per the oracle contract).
    ///
    /// Returns `None` if `open` is empty.
    pub fn closest_open(&self, j: ClientId, open: &[FacilityId]) -> Option<(FacilityId, f64)> {
        self.oracle.nearest_in_set(j, open)
    }

    /// [`FlInstance::closest_open`] for every client at once — one batched oracle
    /// query, which the spatial backend serves with a single subset-index build plus
    /// a sublinear lookup per client instead of `|C| × |open|` distance evaluations.
    pub fn closest_open_all(&self, open: &[FacilityId]) -> Vec<Option<(FacilityId, f64)>> {
        self.oracle.nearest_in_set_all(open)
    }

    /// Total cost (Equation (1) of the paper) of opening exactly the facilities in
    /// `open`: sum of opening costs plus each client's distance to its closest open
    /// facility.
    ///
    /// # Panics
    /// Panics if `open` is empty but there is at least one client, or if an index is out
    /// of range.
    pub fn solution_cost(&self, open: &[FacilityId]) -> f64 {
        let facility: f64 = open.iter().map(|&i| self.facility_cost(i)).sum();
        facility + self.connection_cost(open)
    }

    /// Facility-opening part of the cost of `open`.
    pub fn opening_cost(&self, open: &[FacilityId]) -> f64 {
        open.iter().map(|&i| self.facility_cost(i)).sum()
    }

    /// Connection part of the cost of `open`.
    pub fn connection_cost(&self, open: &[FacilityId]) -> f64 {
        self.closest_open_all(open)
            .into_iter()
            .map(|c| c.expect("solution must open at least one facility").1)
            .sum()
    }

    /// The greedy client-to-facility assignment induced by an open set: every client is
    /// assigned to its closest open facility.
    pub fn closest_assignment(&self, open: &[FacilityId]) -> Vec<FacilityId> {
        self.closest_open_all(open)
            .into_iter()
            .map(|c| c.expect("solution must open at least one facility").0)
            .collect()
    }

    /// `γ_j = min_i (f_i + d(j, i))` for each client, from Equation (2) of the paper.
    ///
    /// Each client's facility row is filled whole through the oracle's
    /// blocked distance kernels, then folded with `f64::min` in ascending
    /// facility order — the same per-element values and fold as a scalar
    /// double loop (min is an exact reduction), parallelised over
    /// deterministic client chunks.
    pub fn gamma_per_client(&self) -> Vec<f64> {
        use rayon::prelude::*;
        let nc = self.num_clients();
        let nf = self.num_facilities();
        if nc == 0 {
            return Vec::new();
        }
        let mut out = vec![0.0; nc];
        let chunk = rayon::deterministic_chunk_len(nc, 256);
        out.par_chunks_mut(chunk).enumerate().for_each(|(ci, seg)| {
            let mut row = vec![0.0; nf];
            for (o, slot) in seg.iter_mut().enumerate() {
                let j = ci * chunk + o;
                self.oracle.row_range_into(j, 0, &mut row);
                *slot = row
                    .iter()
                    .zip(self.facility_costs.iter())
                    .map(|(&d, &f)| f + d)
                    .fold(f64::INFINITY, f64::min);
            }
        });
        out
    }

    /// `γ = max_j γ_j` — the lower bound on `opt` from Equation (2).
    pub fn gamma(&self) -> f64 {
        self.gamma_per_client().into_iter().fold(0.0, f64::max)
    }

    /// Upper bound `Σ_j γ_j >= opt` from Equation (2).
    pub fn gamma_sum(&self) -> f64 {
        self.gamma_per_client().into_iter().sum()
    }
}

/// An instance of a k-clustering problem (k-median, k-means or k-center).
///
/// Every node is simultaneously a client and a potential center, as in Section 2 of the
/// paper; distances form a symmetric `n x n` oracle — dense
/// ([`ClusterInstance::new`]) or point-backed (implicit / spatial,
/// [`ClusterInstance::build`], `O(n)` memory).
///
/// Nodes may carry optional positive **weights** (coreset cell populations;
/// see [`crate::coreset`]): the k-median and k-means objectives multiply
/// each node's term by its weight, defaulting to `1.0` everywhere — and
/// since `1.0 * x` is bitwise `x`, unweighted instances are byte-for-byte
/// unaffected.
#[derive(Debug, Clone)]
pub struct ClusterInstance {
    oracle: Oracle,
    points: Option<Vec<Point>>,
    weights: Option<Vec<f64>>,
}

impl ClusterInstance {
    /// Creates a dense clustering instance from a symmetric distance matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn new(dist: DistanceMatrix) -> Self {
        Self::with_oracle(Oracle::Dense(dist))
    }

    /// Creates a clustering instance around an explicit [`Oracle`] backend.
    ///
    /// # Panics
    /// Panics if the oracle is not square.
    pub fn with_oracle(oracle: Oracle) -> Self {
        assert_eq!(
            oracle.rows(),
            oracle.cols(),
            "clustering instances need a square distance matrix"
        );
        ClusterInstance {
            oracle,
            points: None,
            weights: None,
        }
    }

    /// The backend-parameterized constructor: builds a clustering instance
    /// from a point set under the requested [`Backend`].
    ///
    /// * [`Backend::Dense`] materialises the symmetric `n x n` matrix
    ///   (overflowing shapes come back as a typed [`BuildError`]) and keeps
    ///   the points attached.
    /// * [`Backend::Implicit`] stores the `n` points once (shared between
    ///   the row and column sides) and computes every `d(a, b)` on demand —
    ///   `O(n)` memory instead of the `O(n²)` matrix.
    /// * [`Backend::Spatial`] adds one shared deterministic spatial index
    ///   serving nearest/range queries sublinearly, at the same memory
    ///   order.
    ///
    /// All three serve bit-identical distances for the same point set.
    pub fn build(
        points: Vec<Point>,
        kind: DistanceKind,
        backend: Backend,
    ) -> Result<Self, BuildError> {
        match backend {
            Backend::Dense => {
                let dist = DistanceMatrix::try_between(&points, &points, kind)?;
                Ok(ClusterInstance::new(dist).with_points(points))
            }
            Backend::Implicit => Ok(Self::with_oracle(Oracle::Implicit(
                ImplicitMetric::symmetric(points, kind),
            ))),
            Backend::Spatial => Ok(Self::with_oracle(Oracle::Spatial(
                SpatialOracle::symmetric(points, kind),
            ))),
        }
    }

    /// Creates a clustering instance from a point set under Euclidean distance,
    /// materialising the dense matrix. Use [`ClusterInstance::build`] with
    /// [`Backend::Implicit`] to keep memory at `O(n)` instead.
    pub fn from_points(points: Vec<Point>) -> Self {
        let dist = DistanceMatrix::pairwise(&points, crate::point::DistanceKind::Euclidean);
        ClusterInstance {
            oracle: Oracle::Dense(dist),
            points: Some(points),
            weights: None,
        }
    }

    /// Attaches provenance points to an instance built from a matrix.
    ///
    /// # Panics
    /// Panics if the number of points does not match the matrix dimension.
    pub fn with_points(mut self, points: Vec<Point>) -> Self {
        assert_eq!(points.len(), self.n(), "points must match matrix dimension");
        self.points = Some(points);
        self
    }

    /// Attaches per-node weights (e.g. coreset cell populations). The
    /// k-median / k-means objectives multiply each node's term by its
    /// weight; k-center (a max, not a sum) ignores them.
    ///
    /// # Panics
    /// Panics if the weight count does not match `n` or any weight is not
    /// finite and positive.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.n(), "weights must match node count");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be finite and positive"
        );
        self.weights = Some(weights);
        self
    }

    /// The per-node weights, if any were attached.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Weight of node `j` (`1.0` when the instance is unweighted).
    #[inline]
    pub fn weight(&self, j: NodeId) -> f64 {
        match &self.weights {
            Some(w) => w[j],
            None => 1.0,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.oracle.rows()
    }

    /// Distance between nodes `a` and `b`.
    #[inline]
    pub fn dist(&self, a: NodeId, b: NodeId) -> f64 {
        self.oracle.dist(a, b)
    }

    /// The distance oracle serving `d(a, b)` queries (dense or implicit).
    #[inline]
    pub fn distances(&self) -> &Oracle {
        &self.oracle
    }

    /// Which backend serves the distances.
    #[inline]
    pub fn backend(&self) -> Backend {
        self.oracle.backend()
    }

    /// Estimated resident bytes of the distance storage (see
    /// [`DistanceOracle::memory_bytes`]).
    pub fn memory_bytes(&self) -> u64 {
        self.oracle.memory_bytes()
    }

    /// The node points, if the instance carries geometry (always for the implicit
    /// and spatial backends).
    pub fn points(&self) -> Option<&[Point]> {
        match &self.oracle {
            Oracle::Dense(_) => self.points.as_deref(),
            other => other.as_implicit().map(ImplicitMetric::from_points),
        }
    }

    /// `d(j, S)` and the closest center for node `j` under center set `centers`
    /// (equidistant ties towards the lowest center index, per the oracle contract).
    pub fn closest_center(&self, j: NodeId, centers: &[NodeId]) -> Option<(NodeId, f64)> {
        self.oracle.nearest_in_set(j, centers)
    }

    /// [`ClusterInstance::closest_center`] for every node at once — one batched
    /// oracle query (a single subset-index build on the spatial backend).
    pub fn closest_center_all(&self, centers: &[NodeId]) -> Vec<Option<(NodeId, f64)>> {
        self.oracle.nearest_in_set_all(centers)
    }

    /// k-median objective: weighted sum over nodes of the distance to the
    /// closest center (all weights `1.0` on an unweighted instance —
    /// bitwise identical to the plain sum).
    pub fn kmedian_cost(&self, centers: &[NodeId]) -> f64 {
        self.closest_center_all(centers)
            .into_iter()
            .enumerate()
            .map(|(j, c)| self.weight(j) * c.expect("centers empty").1)
            .sum()
    }

    /// k-means objective: weighted sum over nodes of the **squared** distance to the
    /// closest center.
    pub fn kmeans_cost(&self, centers: &[NodeId]) -> f64 {
        self.closest_center_all(centers)
            .into_iter()
            .enumerate()
            .map(|(j, c)| {
                let d = c.expect("centers empty").1;
                self.weight(j) * (d * d)
            })
            .sum()
    }

    /// k-center objective: maximum over nodes of the distance to the closest center.
    /// Weights do not enter a max objective.
    pub fn kcenter_cost(&self, centers: &[NodeId]) -> f64 {
        self.closest_center_all(centers)
            .into_iter()
            .map(|c| c.expect("centers empty").1)
            .fold(0.0, f64::max)
    }

    /// Node-to-center assignment mapping each node to its closest center.
    pub fn center_assignment(&self, centers: &[NodeId]) -> Vec<NodeId> {
        self.closest_center_all(centers)
            .into_iter()
            .map(|c| c.expect("centers empty").0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DistanceKind;

    fn tiny_fl() -> FlInstance {
        // 3 clients, 2 facilities.
        // d = [[1, 4], [2, 3], [5, 1]]
        let dist = DistanceMatrix::from_rows(3, 2, vec![1.0, 4.0, 2.0, 3.0, 5.0, 1.0]);
        FlInstance::new(vec![10.0, 20.0], dist)
    }

    #[test]
    fn fl_dimensions_and_m() {
        let inst = tiny_fl();
        assert_eq!(inst.num_clients(), 3);
        assert_eq!(inst.num_facilities(), 2);
        assert_eq!(inst.m(), 6);
    }

    #[test]
    fn fl_solution_costs() {
        let inst = tiny_fl();
        // Open only facility 0: cost 10 + 1 + 2 + 5 = 18
        assert_eq!(inst.solution_cost(&[0]), 18.0);
        // Open only facility 1: cost 20 + 4 + 3 + 1 = 28
        assert_eq!(inst.solution_cost(&[1]), 28.0);
        // Open both: 30 + 1 + 2 + 1 = 34
        assert_eq!(inst.solution_cost(&[0, 1]), 34.0);
        assert_eq!(inst.opening_cost(&[0, 1]), 30.0);
        assert_eq!(inst.connection_cost(&[0, 1]), 4.0);
    }

    #[test]
    fn fl_closest_assignment() {
        let inst = tiny_fl();
        assert_eq!(inst.closest_assignment(&[0, 1]), vec![0, 0, 1]);
        assert_eq!(inst.closest_open(2, &[0, 1]), Some((1, 1.0)));
        assert_eq!(inst.closest_open(0, &[]), None);
    }

    #[test]
    fn fl_gamma_bounds() {
        let inst = tiny_fl();
        // gamma_j = min(f_i + d(j,i)): client0 min(11,24)=11, client1 min(12,23)=12,
        // client2 min(15,21)=15
        assert_eq!(inst.gamma_per_client(), vec![11.0, 12.0, 15.0]);
        assert_eq!(inst.gamma(), 15.0);
        assert_eq!(inst.gamma_sum(), 38.0);
        // Equation (2): gamma <= opt <= gamma_sum
        let opt = inst.solution_cost(&[0]).min(inst.solution_cost(&[1]));
        assert!(inst.gamma() <= opt);
        assert!(opt <= inst.gamma_sum());
    }

    #[test]
    fn fl_from_points_matches_euclidean() {
        let clients = vec![Point::xy(0.0, 0.0), Point::xy(1.0, 0.0)];
        let facilities = vec![Point::xy(0.0, 3.0)];
        let inst = FlInstance::from_points(vec![2.0], clients.clone(), facilities.clone());
        assert_eq!(inst.dist(0, 0), 3.0);
        assert!((inst.dist(1, 0) - (10.0_f64).sqrt()).abs() < 1e-12);
        assert!(inst.client_points().is_some());
        assert!(inst.facility_points().is_some());
    }

    #[test]
    #[should_panic(expected = "facility cost vector length")]
    fn fl_bad_cost_length_panics() {
        let dist = DistanceMatrix::filled(2, 2, 1.0);
        let _ = FlInstance::new(vec![1.0], dist);
    }

    fn tiny_cluster() -> ClusterInstance {
        // 4 points on a line: 0, 1, 5, 6
        let pts = vec![
            Point::scalar(0.0),
            Point::scalar(1.0),
            Point::scalar(5.0),
            Point::scalar(6.0),
        ];
        ClusterInstance::from_points(pts)
    }

    #[test]
    fn cluster_objectives() {
        let inst = tiny_cluster();
        assert_eq!(inst.n(), 4);
        // centers {0, 3}: distances 0,1,1,0
        assert_eq!(inst.kmedian_cost(&[0, 3]), 2.0);
        assert_eq!(inst.kmeans_cost(&[0, 3]), 2.0);
        assert_eq!(inst.kcenter_cost(&[0, 3]), 1.0);
        // single center 1: distances 1,0,4,5
        assert_eq!(inst.kmedian_cost(&[1]), 10.0);
        assert_eq!(inst.kmeans_cost(&[1]), 42.0);
        assert_eq!(inst.kcenter_cost(&[1]), 5.0);
        assert_eq!(inst.center_assignment(&[0, 3]), vec![0, 0, 3, 3]);
    }

    #[test]
    fn cluster_from_matrix_requires_square() {
        let m = DistanceMatrix::pairwise(
            &[Point::scalar(0.0), Point::scalar(2.0)],
            DistanceKind::Euclidean,
        );
        let inst = ClusterInstance::new(m);
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.dist(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn cluster_non_square_panics() {
        let _ = ClusterInstance::new(DistanceMatrix::filled(2, 3, 1.0));
    }

    #[test]
    fn weighted_objectives_scale_per_node_terms() {
        let inst = tiny_cluster().with_weights(vec![2.0, 1.0, 3.0, 1.0]);
        // centers {0, 3}: distances 0,1,1,0 -> weighted kmedian 0+1+3+0.
        assert_eq!(inst.kmedian_cost(&[0, 3]), 4.0);
        assert_eq!(inst.kmeans_cost(&[0, 3]), 4.0);
        // k-center is a max; weights do not enter.
        assert_eq!(inst.kcenter_cost(&[0, 3]), 1.0);
        assert_eq!(inst.weight(2), 3.0);
        assert_eq!(inst.weights().unwrap().len(), 4);
        // Unweighted default is 1.0 everywhere.
        assert_eq!(tiny_cluster().weight(2), 1.0);
        assert!(tiny_cluster().weights().is_none());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_weights_panic() {
        let _ = tiny_cluster().with_weights(vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn build_constructors_are_backend_invariant() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(3.0, 4.0),
            Point::xy(1.0, 1.0),
        ];
        let d =
            ClusterInstance::build(pts.clone(), DistanceKind::Euclidean, Backend::Dense).unwrap();
        let i = ClusterInstance::build(pts.clone(), DistanceKind::Euclidean, Backend::Implicit)
            .unwrap();
        let s =
            ClusterInstance::build(pts.clone(), DistanceKind::Euclidean, Backend::Spatial).unwrap();
        assert_eq!(d.backend(), Backend::Dense);
        assert_eq!(i.backend(), Backend::Implicit);
        assert_eq!(s.backend(), Backend::Spatial);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(d.dist(a, b).to_bits(), i.dist(a, b).to_bits());
                assert_eq!(d.dist(a, b).to_bits(), s.dist(a, b).to_bits());
            }
        }
        // Every backend keeps the points reachable.
        assert!(d.points().is_some() && i.points().is_some() && s.points().is_some());

        let costs = vec![1.0, 2.0];
        let fac = vec![Point::xy(0.0, 1.0), Point::xy(2.0, 0.0)];
        let fd = FlInstance::build(
            costs.clone(),
            pts.clone(),
            fac.clone(),
            DistanceKind::Euclidean,
            Backend::Dense,
        )
        .unwrap();
        let fs =
            FlInstance::build(costs, pts, fac, DistanceKind::Euclidean, Backend::Spatial).unwrap();
        assert_eq!(fd.dist(1, 0).to_bits(), fs.dist(1, 0).to_bits());
        assert!(fd.client_points().is_some() && fs.facility_points().is_some());
    }
}
