//! Elementary lower bounds and brute-force optima.
//!
//! The experiment harness certifies approximation ratios against *valid lower bounds* on
//! the optimum rather than against heuristic solutions. This module provides
//!
//! * the `γ`-bounds of Equation (2) of the paper (`γ <= opt <= Σ_j γ_j`),
//! * exact brute-force optima for tiny instances (exponential time; used in tests and in
//!   the small-instance columns of the experiment tables), and
//! * exact brute-force optima for tiny k-clustering instances.
//!
//! Stronger LP-based lower bounds live in `parfaclo-lp`.

use crate::instance::{ClusterInstance, FlInstance};
use crate::{FacilityId, NodeId};

/// The pair of bounds from Equation (2): `gamma <= opt <= gamma_sum`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaBounds {
    /// `γ = max_j min_i (f_i + d(j, i))`, a lower bound on the optimum.
    pub lower: f64,
    /// `Σ_j γ_j`, an upper bound on the optimum.
    pub upper: f64,
}

/// Computes the γ-bounds of Equation (2).
pub fn gamma_bounds(inst: &FlInstance) -> GammaBounds {
    GammaBounds {
        lower: inst.gamma(),
        upper: inst.gamma_sum(),
    }
}

/// Exact optimum of a facility-location instance by exhaustive search over all non-empty
/// facility subsets.
///
/// Runs in `O(2^nf * nc * nf)` time; intended only for instances with at most ~20
/// facilities (tests and certification of small experiment rows).
///
/// Returns the optimal open set and its cost.
///
/// # Panics
/// Panics if the instance has no facilities or more than 25 facilities (to protect
/// against accidental exponential blow-ups).
pub fn brute_force_facility_location(inst: &FlInstance) -> (Vec<FacilityId>, f64) {
    let nf = inst.num_facilities();
    assert!(nf >= 1, "instance has no facilities");
    assert!(nf <= 25, "brute force limited to 25 facilities (got {nf})");
    let mut best_cost = f64::INFINITY;
    let mut best_set: Vec<FacilityId> = Vec::new();
    for mask in 1u64..(1u64 << nf) {
        let open: Vec<FacilityId> = (0..nf).filter(|i| mask & (1 << i) != 0).collect();
        let cost = inst.solution_cost(&open);
        if cost < best_cost {
            best_cost = cost;
            best_set = open;
        }
    }
    (best_set, best_cost)
}

/// Objective selector for brute-force k-clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterObjective {
    /// Sum of distances (k-median).
    KMedian,
    /// Sum of squared distances (k-means).
    KMeans,
    /// Maximum distance (k-center).
    KCenter,
}

/// Exact optimum of a k-clustering instance by exhaustive search over all
/// `C(n, k)` center subsets.
///
/// Intended for tiny instances only (tests and certification); panics if
/// `C(n, k)` would exceed ~2 million subsets.
pub fn brute_force_kclustering(
    inst: &ClusterInstance,
    k: usize,
    objective: ClusterObjective,
) -> (Vec<NodeId>, f64) {
    let n = inst.n();
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k={k}, n={n})");
    let combinations = binomial(n, k);
    assert!(
        combinations <= 2_000_000,
        "brute force limited to 2e6 subsets (C({n},{k}) = {combinations})"
    );

    let mut best_cost = f64::INFINITY;
    let mut best: Vec<NodeId> = Vec::new();
    let mut current: Vec<NodeId> = (0..k).collect();
    loop {
        let cost = match objective {
            ClusterObjective::KMedian => inst.kmedian_cost(&current),
            ClusterObjective::KMeans => inst.kmeans_cost(&current),
            ClusterObjective::KCenter => inst.kcenter_cost(&current),
        };
        if cost < best_cost {
            best_cost = cost;
            best = current.clone();
        }
        // Advance to the next k-combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return (best, best_cost);
            }
            i -= 1;
            if current[i] != i + n - k {
                current[i] += 1;
                for j in (i + 1)..k {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// A simple combinatorial lower bound for k-center: the `(k+1)`-st smallest pairwise
/// "bottleneck" — specifically, for any set of `k+1` nodes, half the minimum pairwise
/// distance among them is a lower bound on the optimal radius. We take a greedy
/// farthest-point set of size `k+1` to make the bound as large as possible.
///
/// This is the classical certificate associated with Gonzalez's algorithm and is exactly
/// the bound the 2-approximation guarantee of Theorem 6.1 is measured against in the
/// experiments.
pub fn kcenter_lower_bound(inst: &ClusterInstance, k: usize) -> f64 {
    let n = inst.n();
    if n <= k {
        return 0.0;
    }
    // Greedy farthest-point traversal (Gonzalez) to pick k+1 spread-out nodes.
    let mut chosen: Vec<NodeId> = vec![0];
    let mut dist_to_chosen: Vec<f64> = (0..n).map(|j| inst.dist(j, 0)).collect();
    while chosen.len() < k + 1 {
        let (next, _) = dist_to_chosen
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        chosen.push(next);
        for (j, d) in dist_to_chosen.iter_mut().enumerate() {
            *d = d.min(inst.dist(j, next));
        }
    }
    // Minimum pairwise distance among the k+1 chosen nodes; by pigeonhole two of them
    // share a center in any k-center solution, so opt >= min_pair / 2.
    let mut min_pair = f64::INFINITY;
    for a in 0..chosen.len() {
        for b in (a + 1)..chosen.len() {
            min_pair = min_pair.min(inst.dist(chosen[a], chosen[b]));
        }
    }
    min_pair / 2.0
}

/// A simple lower bound for k-median: sum over all nodes of the distance to their
/// nearest *other* node, restricted to the `n - k` nodes with the largest such
/// distances being free... in fact the simplest valid bound is: for each node `j`, if
/// `j` is not a center it pays at least the distance to its nearest neighbour. At most
/// `k` nodes are centers, so the optimum is at least the sum of the `n - k` smallest
/// nearest-neighbour distances.
pub fn kmedian_lower_bound(inst: &ClusterInstance, k: usize) -> f64 {
    let n = inst.n();
    if n <= k {
        return 0.0;
    }
    let mut nn: Vec<f64> = (0..n)
        .map(|j| {
            (0..n)
                .filter(|&o| o != j)
                .map(|o| inst.dist(j, o))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    nn.sort_by(|a, b| a.partial_cmp(b).unwrap());
    nn[..n - k].iter().sum()
}

fn binomial(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
        if result > u64::MAX as u128 {
            return result;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distmat::DistanceMatrix;
    use crate::gen::{self, GenParams};

    #[test]
    fn gamma_bounds_bracket_optimum() {
        let inst = gen::facility_location(GenParams::uniform_square(8, 5).with_seed(7));
        let bounds = gamma_bounds(&inst);
        let (_, opt) = brute_force_facility_location(&inst);
        assert!(bounds.lower <= opt + 1e-9);
        assert!(opt <= bounds.upper + 1e-9);
    }

    #[test]
    fn brute_force_tiny_instance_known_answer() {
        // 3 clients, 2 facilities, costs chosen so opening facility 0 only is optimal.
        let dist = DistanceMatrix::from_rows(3, 2, vec![1.0, 4.0, 2.0, 3.0, 5.0, 1.0]);
        let inst = FlInstance::new(vec![1.0, 100.0], dist);
        let (open, cost) = brute_force_facility_location(&inst);
        assert_eq!(open, vec![0]);
        assert_eq!(cost, 1.0 + 1.0 + 2.0 + 5.0);
    }

    #[test]
    fn brute_force_opens_all_when_free() {
        let inst = gen::facility_location(
            GenParams::uniform_square(6, 4)
                .with_seed(3)
                .with_cost_model(crate::gen::FacilityCostModel::Zero),
        );
        let (open, cost) = brute_force_facility_location(&inst);
        assert_eq!(open.len(), 4);
        assert!((cost - inst.solution_cost(&[0, 1, 2, 3])).abs() < 1e-9);
    }

    #[test]
    fn brute_force_kclustering_line() {
        // Nodes at 0, 1, 10, 11: with k = 2 the optimal k-median centers split the pairs.
        let inst = gen::clustering(GenParams::line(4, 4));
        let (centers, cost) = brute_force_kclustering(&inst, 2, ClusterObjective::KMedian);
        assert_eq!(cost, 2.0);
        assert_eq!(centers.len(), 2);
        let (_, kc) = brute_force_kclustering(&inst, 2, ClusterObjective::KCenter);
        assert_eq!(kc, 1.0);
        let (_, km) = brute_force_kclustering(&inst, 2, ClusterObjective::KMeans);
        assert_eq!(km, 2.0);
    }

    #[test]
    fn kcenter_lower_bound_is_valid() {
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::uniform_square(12, 12).with_seed(seed));
            for k in 1..4 {
                let lb = kcenter_lower_bound(&inst, k);
                let (_, opt) = brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
                assert!(
                    lb <= opt + 1e-9,
                    "seed {seed} k {k}: lower bound {lb} exceeds optimum {opt}"
                );
            }
        }
    }

    #[test]
    fn kmedian_lower_bound_is_valid() {
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::uniform_square(10, 10).with_seed(seed));
            for k in 1..4 {
                let lb = kmedian_lower_bound(&inst, k);
                let (_, opt) = brute_force_kclustering(&inst, k, ClusterObjective::KMedian);
                assert!(
                    lb <= opt + 1e-9,
                    "seed {seed} k {k}: lower bound {lb} exceeds optimum {opt}"
                );
            }
        }
    }

    #[test]
    fn lower_bounds_zero_when_k_geq_n() {
        let inst = gen::clustering(GenParams::uniform_square(4, 4).with_seed(1));
        assert_eq!(kcenter_lower_bound(&inst, 4), 0.0);
        assert_eq!(kmedian_lower_bound(&inst, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "25 facilities")]
    fn brute_force_guards_against_blowup() {
        let inst = gen::facility_location(GenParams::uniform_square(2, 30).with_seed(0));
        let _ = brute_force_facility_location(&inst);
    }
}
