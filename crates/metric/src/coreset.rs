//! Deterministic ε-coresets over the uniform grid, and the unified
//! instance-construction error type.
//!
//! The clustering local searches evaluate `k · (n − k)` candidate swaps per
//! round, each an `O(n)` sweep — an `O(k · n²)` transient that no distance
//! backend can hide. The coreset path sidesteps it with the classic
//! solve-small-then-map-back shape: snap every point to a uniform grid with
//! `ceil(1/ε)` cells per axis over the bounding box, keep one **lowest-id
//! medoid** per occupied cell weighted by the cell's population, run the
//! solver on that weighted sub-instance (its size is bounded by the grid
//! resolution, independent of `n`), and finish with a single
//! `nearest_in_set_all` sweep assigning every original point to the chosen
//! centers.
//!
//! Determinism comes for free from three choices:
//!
//! * the representative is a *medoid* (an actual input point, the smallest
//!   index in its cell), not a centroid — so coreset distances are ordinary
//!   oracle distances, bit-identical under every backend;
//! * weights are cell populations — integers stored exactly in `f64`;
//! * the single pass over the points is sequential and the occupied cells
//!   are sorted by representative id afterwards, so hash-map iteration
//!   order is unobservable and thread count cannot matter.

use crate::distmat::{DistanceMatrix, SizeOverflowError};
use crate::instance::ClusterInstance;
use crate::oracle::DistanceOracle;
use crate::point::Point;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Coreset knob threaded from the CLI / `RunConfig` into the clustering
/// solvers: `Off` solves on the full instance, `Eps(ε)` solves on the grid
/// coreset and maps the centers back.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Coreset {
    /// Solve on the full instance (the historical path).
    #[default]
    Off,
    /// Solve on the ε-grid coreset (`ceil(1/ε)` cells per axis), then do one
    /// full-set assignment sweep.
    Eps(f64),
}

impl Coreset {
    /// Canonical spelling, the inverse of [`Coreset::from_str`].
    pub fn as_string(&self) -> String {
        match self {
            Coreset::Off => "off".to_string(),
            Coreset::Eps(e) => format!("eps:{e}"),
        }
    }
}

impl fmt::Display for Coreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_string())
    }
}

impl FromStr for Coreset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().to_lowercase();
        if s == "off" {
            return Ok(Coreset::Off);
        }
        if let Some(rest) = s.strip_prefix("eps:") {
            let eps: f64 = rest
                .parse()
                .map_err(|_| format!("invalid coreset epsilon '{rest}'"))?;
            if !eps.is_finite() || eps <= 0.0 {
                return Err(format!(
                    "coreset epsilon must be finite and positive, got '{rest}'"
                ));
            }
            return Ok(Coreset::Eps(eps));
        }
        Err(format!(
            "unknown coreset spec '{s}' (expected off or eps:<f64>)"
        ))
    }
}

/// A weighted grid coreset of a point set: one lowest-id medoid per occupied
/// grid cell, weighted by the cell's population.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCoreset {
    /// Indices of the representative points, strictly ascending.
    representatives: Vec<usize>,
    /// `weights[i]` = number of input points in `representatives[i]`'s cell
    /// (an integer stored exactly in `f64`).
    weights: Vec<f64>,
    /// The ε the grid was built for.
    eps: f64,
    /// Grid resolution: `ceil(1/ε)` cells per axis.
    cells_per_axis: usize,
}

impl GridCoreset {
    /// Representative point indices into the original point set, strictly
    /// ascending.
    pub fn representatives(&self) -> &[usize] {
        &self.representatives
    }

    /// Cell populations, aligned with [`GridCoreset::representatives`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The ε the grid was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Grid resolution per axis (`ceil(1/ε)`).
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// Number of representatives (occupied cells).
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// Whether the coreset is empty (only for an empty input).
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }
}

/// Builds the deterministic ε-grid coreset of a point set.
///
/// The bounding box is split into `ceil(1/ε)` cells per axis; each occupied
/// cell contributes its lowest-index point as representative, weighted by
/// the cell's population. The output size is at most
/// `min(n, ceil(1/ε)^dim)` — independent of `n` once the grid saturates.
/// The pass is sequential (`O(n · dim)`), so the result is identical at any
/// thread count; representatives come back sorted ascending.
///
/// # Panics
/// Panics if `eps` is not finite and positive, or if the points disagree on
/// dimension.
pub fn build_coreset(points: &[Point], eps: f64) -> GridCoreset {
    assert!(
        eps.is_finite() && eps > 0.0,
        "coreset epsilon must be finite and positive"
    );
    let cells_per_axis = ((1.0 / eps).ceil() as usize).max(1);
    if points.is_empty() {
        return GridCoreset {
            representatives: Vec::new(),
            weights: Vec::new(),
            eps,
            cells_per_axis,
        };
    }
    let dim = points[0].dim();
    let mut lo = points[0].coords().to_vec();
    let mut hi = lo.clone();
    for p in points {
        assert_eq!(p.dim(), dim, "points must share a dimension");
        for (a, &c) in p.coords().iter().enumerate() {
            lo[a] = lo[a].min(c);
            hi[a] = hi[a].max(c);
        }
    }
    // Per-axis cell side; a degenerate axis (all points equal) collapses to
    // a single cell on that axis.
    let side: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| (h - l) / cells_per_axis as f64)
        .collect();
    let mut cells: HashMap<Vec<usize>, (usize, f64)> = HashMap::new();
    let mut key = vec![0usize; dim];
    for (idx, p) in points.iter().enumerate() {
        for (a, k) in key.iter_mut().enumerate() {
            let s = side[a];
            *k = if s > 0.0 {
                // The top edge belongs to the last cell.
                (((p.coords()[a] - lo[a]) / s) as usize).min(cells_per_axis - 1)
            } else {
                0
            };
        }
        let entry = cells.entry(key.clone()).or_insert((idx, 0.0));
        entry.1 += 1.0;
    }
    // Sorting by representative id makes hash-map iteration order
    // unobservable; the first point seen in a cell is its lowest index, so
    // the stored id is already the medoid.
    let mut reps: Vec<(usize, f64)> = cells.into_values().collect();
    reps.sort_unstable_by_key(|&(id, _)| id);
    let (representatives, weights) = reps.into_iter().unzip();
    GridCoreset {
        representatives,
        weights,
        eps,
        cells_per_axis,
    }
}

/// Materialises the weighted dense sub-instance induced by a coreset.
///
/// Each representative row is gathered through the parent oracle's blocked
/// kernels ([`DistanceOracle::row_gather`]), so the sub-matrix is
/// bit-identical under every parent backend, and the cell populations ride
/// along as per-node weights.
pub fn coreset_instance(inst: &ClusterInstance, coreset: &GridCoreset) -> ClusterInstance {
    let k = coreset.len();
    let mut data = vec![0.0; k * k];
    let oracle = inst.distances();
    for (r, &rep) in coreset.representatives().iter().enumerate() {
        oracle.row_gather(
            rep,
            coreset.representatives(),
            &mut data[r * k..(r + 1) * k],
        );
    }
    ClusterInstance::new(DistanceMatrix::from_rows(k, k, data))
        .with_weights(coreset.weights().to_vec())
}

/// Unified error type for instance construction, returned by the
/// backend-parameterized builders (`gen::build_facility_location`,
/// `FlInstance::build`, …) and mapped into `SolveError` at the registry
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The dense `rows x cols` shape overflows memory arithmetic.
    SizeOverflow(SizeOverflowError),
    /// The dense matrix is representable but larger than a caller-imposed
    /// byte cap (the CLI refuses >4 GiB allocations this way).
    DenseBytesExceedCap {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
        /// The cap that was exceeded, in bytes.
        cap_bytes: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::SizeOverflow(e) => e.fmt(f),
            BuildError::DenseBytesExceedCap {
                rows,
                cols,
                cap_bytes,
            } => {
                let bytes = (*rows as u128) * (*cols as u128) * 8;
                write!(
                    f,
                    "the dense backend would materialise a {:.1} GiB distance matrix \
                     ({rows} x {cols}), past the {:.1} GiB cap; use --backend implicit or \
                     --backend spatial, which stay O(points) at any size \
                     (e.g. `--gen xxlarge --backend spatial`)",
                    bytes as f64 / (1u64 << 30) as f64,
                    *cap_bytes as f64 / (1u64 << 30) as f64,
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SizeOverflowError> for BuildError {
    fn from(e: SizeOverflowError) -> Self {
        BuildError::SizeOverflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, GenParams};
    use crate::oracle::Backend;

    #[test]
    fn coreset_spec_round_trips() {
        assert_eq!("off".parse::<Coreset>().unwrap(), Coreset::Off);
        assert_eq!("OFF ".parse::<Coreset>().unwrap(), Coreset::Off);
        assert_eq!("eps:0.25".parse::<Coreset>().unwrap(), Coreset::Eps(0.25));
        for cs in [Coreset::Off, Coreset::Eps(0.1), Coreset::Eps(0.25)] {
            assert_eq!(cs.to_string().parse::<Coreset>().unwrap(), cs);
        }
        assert!("eps:0".parse::<Coreset>().is_err());
        assert!("eps:-1".parse::<Coreset>().is_err());
        assert!("eps:nan".parse::<Coreset>().is_err());
        assert!("grid".parse::<Coreset>().is_err());
    }

    #[test]
    fn grid_coreset_covers_and_bounds_size() {
        let inst = gen::build_clustering(
            GenParams::uniform_square(500, 500).with_seed(7),
            Backend::Implicit,
        )
        .unwrap();
        let pts = inst.points().unwrap();
        let cs = build_coreset(pts, 0.1);
        assert_eq!(cs.cells_per_axis(), 10);
        assert!(cs.len() <= 100, "at most 10x10 occupied cells");
        assert!(cs.len() > 10, "uniform points occupy many cells");
        // Representatives are strictly ascending valid indices; weights are
        // positive integers summing to n.
        assert!(cs.representatives().windows(2).all(|w| w[0] < w[1]));
        assert!(cs.representatives().iter().all(|&r| r < pts.len()));
        assert!(cs.weights().iter().all(|&w| w >= 1.0 && w.fract() == 0.0));
        let total: f64 = cs.weights().iter().sum();
        assert_eq!(total, pts.len() as f64);
        // Every point is within the cell diagonal of some representative:
        // side = extent/10, diagonal = sqrt(2) * side ≈ 14.2 per 100-side box.
        let reps: Vec<&Point> = cs.representatives().iter().map(|&r| &pts[r]).collect();
        let diag = 2.0_f64.sqrt() * 100.0 / 10.0 + 1e-9;
        for p in pts {
            let d = reps
                .iter()
                .map(|r| p.euclidean(r))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= diag, "point {d} beyond cell diagonal {diag}");
        }
    }

    #[test]
    fn coreset_is_backend_and_thread_invariant() {
        let params = GenParams::gaussian_clusters(300, 300, 6).with_seed(3);
        let mut built = Vec::new();
        for backend in [Backend::Dense, Backend::Implicit, Backend::Spatial] {
            let inst = gen::build_clustering(params, backend).unwrap();
            let cs = build_coreset(inst.points().unwrap(), 0.2);
            let sub = coreset_instance(&inst, &cs);
            built.push((cs, sub));
        }
        for (cs, sub) in &built[1..] {
            assert_eq!(cs, &built[0].0);
            assert_eq!(sub.distances(), built[0].1.distances());
            assert_eq!(sub.weights(), built[0].1.weights());
        }
    }

    #[test]
    fn degenerate_inputs() {
        // Empty input -> empty coreset.
        let cs = build_coreset(&[], 0.5);
        assert!(cs.is_empty());
        // All-coincident points collapse to one cell.
        let pts = vec![Point::xy(3.0, 4.0); 20];
        let cs = build_coreset(&pts, 0.1);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.representatives(), &[0]);
        assert_eq!(cs.weights(), &[20.0]);
        // eps >= 1 -> a single cell per axis.
        let pts = vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)];
        let cs = build_coreset(&pts, 2.0);
        assert_eq!(cs.cells_per_axis(), 1);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn coreset_instance_carries_parent_distances() {
        let inst = gen::build_clustering(
            GenParams::uniform_square(64, 64).with_seed(1),
            Backend::Spatial,
        )
        .unwrap();
        let cs = build_coreset(inst.points().unwrap(), 0.3);
        let sub = coreset_instance(&inst, &cs);
        assert_eq!(sub.n(), cs.len());
        for (a, &ra) in cs.representatives().iter().enumerate() {
            for (b, &rb) in cs.representatives().iter().enumerate() {
                assert_eq!(sub.dist(a, b).to_bits(), inst.dist(ra, rb).to_bits());
            }
        }
        assert_eq!(sub.weights().unwrap(), cs.weights());
    }

    #[test]
    fn build_error_display_points_at_backends() {
        let overflow = BuildError::from(SizeOverflowError {
            rows: usize::MAX,
            cols: 2,
        });
        assert!(overflow.to_string().contains("implicit backend"));
        let cap = BuildError::DenseBytesExceedCap {
            rows: 10_000_000,
            cols: 100,
            cap_bytes: 4 << 30,
        };
        let msg = cap.to_string();
        assert!(msg.contains("GiB"), "{msg}");
        assert!(msg.contains("spatial"), "{msg}");
    }
}
