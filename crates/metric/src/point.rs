//! Geometric points in `R^d` and the distance functions used to build instances.
//!
//! The paper assumes an abstract metric; our synthetic generators produce points in
//! low-dimensional Euclidean space (the most common setting for facility-location and
//! clustering workloads) and then materialise dense distance matrices from them.
//!
//! The arithmetic itself lives in `parfaclo-kernel`: [`DistanceKind`] is
//! re-exported from there, and every `Point` distance method delegates to the
//! shared slice kernel, so this crate, the spatial indexes and the blocked
//! batch kernels all compute bit-identical values.

pub use parfaclo_kernel::DistanceKind;

/// A point in `R^d`, stored as a dense coordinate vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// Creates a 2-dimensional point.
    pub fn xy(x: f64, y: f64) -> Self {
        Point { coords: vec![x, y] }
    }

    /// Creates a 1-dimensional point (used by the adversarial line-metric generator).
    pub fn scalar(x: f64) -> Self {
        Point { coords: vec![x] }
    }

    /// The dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Immutable view of the coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Euclidean (L2) distance to another point.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn euclidean(&self, other: &Point) -> f64 {
        self.squared_euclidean(other).sqrt()
    }

    /// Squared Euclidean distance (the k-means objective uses squared distances).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn squared_euclidean(&self, other: &Point) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "points must have equal dimension ({} vs {})",
            self.dim(),
            other.dim()
        );
        DistanceKind::SquaredEuclidean.distance(&self.coords, &other.coords)
    }

    /// Manhattan (L1) distance to another point.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn manhattan(&self, other: &Point) -> f64 {
        assert_eq!(self.dim(), other.dim(), "points must have equal dimension");
        DistanceKind::Manhattan.distance(&self.coords, &other.coords)
    }

    /// Chebyshev (L∞) distance to another point.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn chebyshev(&self, other: &Point) -> f64 {
        assert_eq!(self.dim(), other.dim(), "points must have equal dimension");
        DistanceKind::Chebyshev.distance(&self.coords, &other.coords)
    }

    /// Distance under the given [`DistanceKind`].
    pub fn distance(&self, other: &Point, kind: DistanceKind) -> f64 {
        match kind {
            DistanceKind::Euclidean => self.euclidean(other),
            DistanceKind::SquaredEuclidean => self.squared_euclidean(other),
            DistanceKind::Manhattan => self.manhattan(other),
            DistanceKind::Chebyshev => self.chebyshev(other),
        }
    }

    /// Coordinate-wise mean of a non-empty slice of points (the k-means centroid).
    ///
    /// # Panics
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn centroid(points: &[Point]) -> Point {
        assert!(!points.is_empty(), "centroid of empty point set");
        let dim = points[0].dim();
        let mut acc = vec![0.0; dim];
        for p in points {
            assert_eq!(p.dim(), dim, "points must have equal dimension");
            for (a, c) in acc.iter_mut().zip(p.coords.iter()) {
                *a += c;
            }
        }
        let n = points.len() as f64;
        for a in acc.iter_mut() {
            *a /= n;
        }
        Point::new(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(3.0, 4.0);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
        assert!((a.squared_euclidean(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = Point::xy(1.0, 2.0);
        let b = Point::xy(4.0, -2.0);
        assert!((a.manhattan(&b) - 7.0).abs() < 1e-12);
        assert!((a.chebyshev(&b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn distance_dispatch_matches_direct_calls() {
        let a = Point::new(vec![1.0, 0.0, -1.0]);
        let b = Point::new(vec![0.0, 2.0, 1.0]);
        assert_eq!(a.distance(&b, DistanceKind::Euclidean), a.euclidean(&b));
        assert_eq!(
            a.distance(&b, DistanceKind::SquaredEuclidean),
            a.squared_euclidean(&b)
        );
        assert_eq!(a.distance(&b, DistanceKind::Manhattan), a.manhattan(&b));
        assert_eq!(a.distance(&b, DistanceKind::Chebyshev), a.chebyshev(&b));
    }

    #[test]
    fn self_distance_is_zero() {
        let p = Point::new(vec![2.5, -3.5, 7.0]);
        assert_eq!(p.euclidean(&p), 0.0);
        assert_eq!(p.manhattan(&p), 0.0);
        assert_eq!(p.chebyshev(&p), 0.0);
    }

    #[test]
    fn centroid_of_square() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(2.0, 0.0),
            Point::xy(2.0, 2.0),
            Point::xy(0.0, 2.0),
        ];
        let c = Point::centroid(&pts);
        assert_eq!(c.coords(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn mismatched_dimensions_panic() {
        let a = Point::scalar(1.0);
        let b = Point::xy(1.0, 2.0);
        let _ = a.euclidean(&b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_empty_panics() {
        let _ = Point::centroid(&[]);
    }

    #[test]
    fn symmetry() {
        let a = Point::new(vec![1.0, 2.0, 3.0]);
        let b = Point::new(vec![-4.0, 0.5, 9.0]);
        assert_eq!(a.euclidean(&b), b.euclidean(&a));
        assert_eq!(a.manhattan(&b), b.manhattan(&a));
    }
}
