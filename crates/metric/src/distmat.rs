//! Dense distance matrices.
//!
//! Section 2 of the paper represents the input as a dense `n x n` matrix of distances
//! and expresses every algorithm in terms of row/column operations over it. We provide a
//! simple row-major dense matrix with parallel construction from point sets.

use crate::point::{DistanceKind, Point};
use rayon::prelude::*;

/// A requested dense matrix shape whose entry count (or byte size) does not fit in
/// memory arithmetic: `rows * cols` overflows `usize`, or the `8 * rows * cols` bytes
/// of storage would. Returned by the checked constructors instead of letting a
/// capacity-overflow abort take the process down when a caller asks for a
/// matrix-backed instance at implicit-only scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeOverflowError {
    /// Requested number of rows.
    pub rows: usize,
    /// Requested number of columns.
    pub cols: usize,
}

impl std::fmt::Display for SizeOverflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dense {} x {} distance matrix does not fit in memory arithmetic \
             (rows * cols overflows); use the implicit backend for instances this large",
            self.rows, self.cols
        )
    }
}

impl std::error::Error for SizeOverflowError {}

/// Checked entry count of a `rows x cols` dense matrix: errors when `rows * cols`
/// (or its byte size `8 * rows * cols`) overflows `usize`.
pub fn checked_matrix_len(rows: usize, cols: usize) -> Result<usize, SizeOverflowError> {
    rows.checked_mul(cols)
        .and_then(|len| len.checked_mul(std::mem::size_of::<f64>()).map(|_| len))
        .ok_or(SizeOverflowError { rows, cols })
}

/// A dense row-major matrix of pairwise distances (or, more generally, non-negative
/// costs) with `rows x cols` entries.
///
/// For facility-location instances the convention throughout the workspace is
/// **rows = clients, columns = facilities**, i.e. `get(j, i) = d(client j, facility i)`,
/// matching the paper's `d(j, i)` notation. For clustering instances the matrix is
/// square and symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` (including when `rows * cols` overflows)
    /// or any entry is negative or non-finite.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        Self::try_from_rows(rows, cols, data).expect("data length must equal rows*cols")
    }

    /// Checked variant of [`DistanceMatrix::from_rows`]: errors (instead of
    /// panicking/aborting) when the requested `rows * cols` shape overflows.
    ///
    /// # Panics
    /// Still panics if `data.len()` disagrees with a *representable* `rows * cols`,
    /// or if any entry is negative or non-finite — those are caller bugs, not
    /// instance-scale problems.
    pub fn try_from_rows(
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    ) -> Result<Self, SizeOverflowError> {
        let len = checked_matrix_len(rows, cols)?;
        assert_eq!(data.len(), len, "data length must equal rows*cols");
        assert!(
            data.iter().all(|d| d.is_finite() && *d >= 0.0),
            "distances must be finite and non-negative"
        );
        Ok(DistanceMatrix { rows, cols, data })
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0);
        let len = checked_matrix_len(rows, cols).expect("matrix shape overflows");
        DistanceMatrix {
            rows,
            cols,
            data: vec![value; len],
        }
    }

    /// Builds the rectangular distance matrix between two point sets in parallel:
    /// entry `(j, i)` is the distance from `from[j]` to `to[i]`.
    ///
    /// # Panics
    /// Panics if `from.len() * to.len()` overflows; see
    /// [`DistanceMatrix::try_between`] for the checked variant.
    pub fn between(from: &[Point], to: &[Point], kind: DistanceKind) -> Self {
        Self::try_between(from, to, kind).expect("matrix shape overflows")
    }

    /// Checked variant of [`DistanceMatrix::between`]: errors when the resulting
    /// `from.len() x to.len()` shape overflows instead of aborting on allocation.
    pub fn try_between(
        from: &[Point],
        to: &[Point],
        kind: DistanceKind,
    ) -> Result<Self, SizeOverflowError> {
        let rows = from.len();
        let cols = to.len();
        checked_matrix_len(rows, cols)?;
        let data: Vec<f64> = from
            .par_iter()
            .flat_map_iter(|p| to.iter().map(move |q| p.distance(q, kind)))
            .collect();
        Ok(DistanceMatrix { rows, cols, data })
    }

    /// Builds the symmetric pairwise distance matrix of a single point set in parallel.
    pub fn pairwise(points: &[Point], kind: DistanceKind) -> Self {
        Self::between(points, points, kind)
    }

    /// Number of rows (clients / nodes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (facilities / nodes).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries `rows * cols` (the paper's `m` for facility location).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The entry at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Mutable access to the entry at `(row, col)`.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        debug_assert!(row < self.rows && col < self.cols);
        &mut self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        debug_assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Column `col` collected into a vector (O(rows)).
    pub fn col_to_vec(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// The transpose of the matrix, built in parallel over the output rows.
    pub fn transpose(&self) -> DistanceMatrix {
        let rows = self.cols;
        let cols = self.rows;
        let data: Vec<f64> = (0..rows)
            .into_par_iter()
            .flat_map_iter(|r| (0..cols).map(move |c| self.get(c, r)))
            .collect();
        DistanceMatrix { rows, cols, data }
    }

    /// Minimum entry of a row together with the column index attaining it.
    ///
    /// Ties are broken towards the smaller column index. Returns `None` for a matrix
    /// with zero columns.
    pub fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        self.row(row)
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
    }

    /// Maximum entry of the whole matrix (0.0 for an empty matrix).
    pub fn max_entry(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum *strictly positive* entry of the matrix, if any.
    pub fn min_positive_entry(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|d| *d > 0.0)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Checks symmetry of a square matrix up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// All distinct entry values, sorted ascending (used by the k-center binary search
    /// over the distance set `D` in Section 6.1).
    pub fn sorted_distinct_values(&self) -> Vec<f64> {
        let mut v = self.data.clone();
        v.par_sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DistanceMatrix {
        DistanceMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn indexing_and_rows() {
        let m = small();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col_to_vec(1), vec![2.0, 5.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.get(1, 1), 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn between_points_matches_direct_distance() {
        let a = vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)];
        let b = vec![Point::xy(3.0, 4.0)];
        let m = DistanceMatrix::between(&a, &b, DistanceKind::Euclidean);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 1);
        assert!((m.get(0, 0) - 5.0).abs() < 1e-12);
        assert!((m.get(1, 0) - a[1].euclidean(&b[0])).abs() < 1e-12);
    }

    #[test]
    fn pairwise_is_symmetric_with_zero_diagonal() {
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::xy(i as f64, (i * i % 7) as f64))
            .collect();
        let m = DistanceMatrix::pairwise(&pts, DistanceKind::Euclidean);
        assert!(m.is_symmetric(1e-12));
        for i in 0..10 {
            assert_eq!(m.get(i, i), 0.0);
        }
    }

    #[test]
    fn row_min_and_extremes() {
        let m = small();
        assert_eq!(m.row_min(0), Some((0, 1.0)));
        assert_eq!(m.row_min(1), Some((0, 4.0)));
        assert_eq!(m.max_entry(), 6.0);
        assert_eq!(m.min_positive_entry(), Some(1.0));
    }

    #[test]
    fn min_positive_skips_zeros() {
        let m = DistanceMatrix::from_rows(1, 3, vec![0.0, 0.5, 2.0]);
        assert_eq!(m.min_positive_entry(), Some(0.5));
        let z = DistanceMatrix::filled(2, 2, 0.0);
        assert_eq!(z.min_positive_entry(), None);
    }

    #[test]
    fn sorted_distinct_values_dedups() {
        let m = DistanceMatrix::from_rows(2, 2, vec![3.0, 1.0, 3.0, 2.0]);
        assert_eq!(m.sorted_distinct_values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn bad_length_panics() {
        let _ = DistanceMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_entry_panics() {
        let _ = DistanceMatrix::from_rows(1, 2, vec![1.0, -2.0]);
    }

    #[test]
    fn overflowing_shapes_are_rejected_with_typed_error() {
        // rows * cols overflows usize outright.
        let err = checked_matrix_len(usize::MAX, 2).unwrap_err();
        assert_eq!(
            err,
            SizeOverflowError {
                rows: usize::MAX,
                cols: 2
            }
        );
        assert!(err.to_string().contains("implicit backend"));
        // rows * cols fits, but the byte size 8 * rows * cols does not.
        assert!(checked_matrix_len(usize::MAX / 4, 2).is_err());
        // Sane shapes pass through.
        assert_eq!(checked_matrix_len(3, 4), Ok(12));
        assert_eq!(checked_matrix_len(0, 7), Ok(0));
        // The checked constructor surfaces the same error instead of aborting.
        assert!(DistanceMatrix::try_from_rows(usize::MAX, 2, Vec::new()).is_err());
        let ok = DistanceMatrix::try_from_rows(1, 2, vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.get(0, 1), 2.0);
    }
}
