//! Distance oracles: uniform access to distances, dense or implicit.
//!
//! The paper's algorithms only ever *read* distances — `d(j, i)` lookups,
//! row/column scans, nearest-in-set queries — so nothing forces the
//! `|C| × |F|` matrix to exist in memory. Following the move of Dhulipala,
//! Blelloch & Shun (swap concrete containers for an implicit access
//! interface and keep the algorithms unchanged), this module abstracts the
//! distance source behind the [`DistanceOracle`] trait with two backends:
//!
//! * [`Oracle::Dense`] wraps the existing [`DistanceMatrix`] — `O(|C|·|F|)`
//!   memory, `O(1)` lookups; the right choice up to a few thousand nodes.
//! * [`Oracle::Implicit`] ([`ImplicitMetric`]) stores only the geometric
//!   [`Point`]s and computes distances on demand — `O(|C| + |F|)` memory,
//!   `O(dim)` lookups; the only feasible choice at 100k–1M clients.
//!
//! Both backends produce **bit-identical** distances for instances built
//! from the same point set (the dense matrix stores exactly the values
//! `Point::distance` computes), so every solver in the workspace emits
//! byte-identical canonical Run JSON under either backend. Whole-oracle
//! sweeps (`max_entry`, `min_positive_entry`, `sorted_distinct_values`) run
//! as deterministic blocked sweeps chunked by
//! [`rayon::deterministic_chunk_len`] — boundaries are a pure function of
//! the element count, never the thread count — with partials combined
//! left-to-right, preserving the workspace-wide determinism contract.

use crate::distmat::DistanceMatrix;
use crate::point::{DistanceKind, Point};
use rayon::prelude::*;
use std::sync::Arc;

/// Which distance backend an instance carries. Stable string forms
/// (`"dense"` / `"implicit"`) are used by the CLI, Run JSON timing metadata
/// and the BENCH artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Distances materialised in a row-major [`DistanceMatrix`].
    #[default]
    Dense,
    /// Distances computed on demand from stored [`Point`]s.
    Implicit,
}

impl Backend {
    /// Stable string form (`"dense"` / `"implicit"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::Implicit => "implicit",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_lowercase().as_str() {
            "dense" => Ok(Backend::Dense),
            "implicit" => Ok(Backend::Implicit),
            other => Err(format!(
                "unknown backend '{other}' (expected dense|implicit)"
            )),
        }
    }
}

/// Read-only access to a (rectangular) matrix of distances.
///
/// `rows` index clients / query points, `cols` index facilities / centers;
/// for clustering instances the oracle is square and symmetric. Every
/// method must be deterministic — in particular independent of thread
/// count — because solver output is compared byte-for-byte across
/// backends, policies and pool sizes.
pub trait DistanceOracle {
    /// Number of rows (clients / nodes).
    fn rows(&self) -> usize;

    /// Number of columns (facilities / nodes).
    fn cols(&self) -> usize;

    /// Total number of logical entries `rows * cols` (the paper's `m`).
    fn len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Whether the oracle has no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance `d(row, col)`.
    fn dist(&self, row: usize, col: usize) -> f64;

    /// Row `row` collected into a vector (`O(cols)` work).
    fn row_to_vec(&self, row: usize) -> Vec<f64> {
        (0..self.cols()).map(|c| self.dist(row, c)).collect()
    }

    /// Column `col` collected into a vector (`O(rows)` work).
    fn col_to_vec(&self, col: usize) -> Vec<f64> {
        (0..self.rows()).map(|r| self.dist(r, col)).collect()
    }

    /// `min_{c in set} d(row, c)` with the argmin, ties broken towards the
    /// smaller column index. `None` if `set` is empty.
    fn nearest_in_set(&self, row: usize, set: &[usize]) -> Option<(usize, f64)> {
        set.iter()
            .map(|&c| (c, self.dist(row, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
    }

    /// Minimum entry of a row together with the column index attaining it
    /// (ties towards the smaller index); `None` for zero columns.
    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        (0..self.cols())
            .map(|c| (c, self.dist(row, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
    }

    /// Maximum entry over the whole oracle (0.0 when empty).
    fn max_entry(&self) -> f64;

    /// Minimum strictly positive entry, if any.
    fn min_positive_entry(&self) -> Option<f64>;

    /// All distinct entry values, sorted ascending (the k-center binary
    /// search's distance set `D`). `O(rows·cols)` time *and* transient
    /// memory under every backend — callers that need bounded memory must
    /// avoid this query.
    fn sorted_distinct_values(&self) -> Vec<f64>;

    /// Estimated resident bytes of the backend's distance storage:
    /// `8·rows·cols` for dense, `O((rows + cols)·dim)` for implicit.
    fn memory_bytes(&self) -> u64;

    /// Which backend answers the queries.
    fn backend(&self) -> Backend;
}

/// Runs `f` over `0..len` in deterministic blocks and combines the per-block
/// results left-to-right with `combine`. Block boundaries come from
/// [`rayon::deterministic_chunk_len`] — a pure function of `len` — so the
/// combine tree (and therefore any floating-point result) is identical at
/// every thread count.
fn blocked_sweep<T: Send>(
    len: usize,
    init: T,
    f: impl Fn(std::ops::Range<usize>) -> T + Sync,
    combine: impl Fn(T, T) -> T,
) -> T {
    if len == 0 {
        return init;
    }
    let chunk = rayon::deterministic_chunk_len(len, 1024);
    let starts: Vec<usize> = (0..len).step_by(chunk).collect();
    let partials: Vec<T> = starts
        .par_iter()
        .map(|&s| f(s..(s + chunk).min(len)))
        .collect();
    partials.into_iter().fold(init, combine)
}

/// The implicit geometric backend: two point sets and a distance function.
///
/// Entry `(r, c)` is `from[r].distance(to[c], kind)`, computed on every
/// access. For symmetric (clustering) oracles `from` and `to` share one
/// allocation ([`ImplicitMetric::symmetric`]), which [`memory_bytes`]
/// counts once.
///
/// [`memory_bytes`]: DistanceOracle::memory_bytes
#[derive(Debug, Clone)]
pub struct ImplicitMetric {
    from: Arc<[Point]>,
    to: Arc<[Point]>,
    kind: DistanceKind,
}

impl PartialEq for ImplicitMetric {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.from[..] == other.from[..] && self.to[..] == other.to[..]
    }
}

impl ImplicitMetric {
    /// Validates one side's points (`O(points · dim)` — the same class of
    /// up-front cost the dense backend pays to assert its entries are finite
    /// and non-negative): every coordinate finite, every point of one
    /// dimension. Returns that dimension (0 for an empty side).
    fn checked_dim(points: &[Point], side: &str) -> usize {
        let dim = points.first().map_or(0, Point::dim);
        for p in points {
            assert_eq!(p.dim(), dim, "{side} points must have equal dimension");
            assert!(
                p.coords().iter().all(|c| c.is_finite()),
                "{side} point coordinates must be finite"
            );
        }
        dim
    }

    /// Creates a rectangular implicit oracle between two point sets.
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite or the points do not all share
    /// one dimension — the same invariant the dense backend enforces on its
    /// entries at construction, checked here in `O(|from| + |to|)`.
    pub fn between(from: Vec<Point>, to: Vec<Point>, kind: DistanceKind) -> Self {
        let from_dim = Self::checked_dim(&from, "row-side");
        let to_dim = Self::checked_dim(&to, "column-side");
        assert!(
            from.is_empty() || to.is_empty() || from_dim == to_dim,
            "row-side and column-side points must have equal dimension \
             ({from_dim} vs {to_dim})"
        );
        ImplicitMetric {
            from: from.into(),
            to: to.into(),
            kind,
        }
    }

    /// Creates a square symmetric implicit oracle over one point set (the
    /// points are stored once and shared between the row and column sides).
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite or the points do not all share
    /// one dimension (see [`ImplicitMetric::between`]).
    pub fn symmetric(points: Vec<Point>, kind: DistanceKind) -> Self {
        Self::checked_dim(&points, "node");
        let shared: Arc<[Point]> = points.into();
        ImplicitMetric {
            from: Arc::clone(&shared),
            to: shared,
            kind,
        }
    }

    /// The row-side (client) points.
    pub fn from_points(&self) -> &[Point] {
        &self.from
    }

    /// The column-side (facility) points.
    pub fn to_points(&self) -> &[Point] {
        &self.to
    }

    /// The distance function entries are computed with.
    pub fn kind(&self) -> DistanceKind {
        self.kind
    }

    fn point_bytes(points: &[Point]) -> u64 {
        points
            .iter()
            .map(|p| (std::mem::size_of::<Point>() + p.dim() * std::mem::size_of::<f64>()) as u64)
            .sum()
    }
}

impl DistanceOracle for ImplicitMetric {
    fn rows(&self) -> usize {
        self.from.len()
    }

    fn cols(&self) -> usize {
        self.to.len()
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        self.from[row].distance(&self.to[col], self.kind)
    }

    fn max_entry(&self) -> f64 {
        let cols = self.cols();
        if cols == 0 {
            return 0.0;
        }
        blocked_sweep(
            self.len(),
            0.0,
            |range| {
                range
                    .map(|idx| self.dist(idx / cols, idx % cols))
                    .fold(0.0, f64::max)
            },
            f64::max,
        )
    }

    fn min_positive_entry(&self) -> Option<f64> {
        let cols = self.cols();
        if cols == 0 {
            return None;
        }
        blocked_sweep(
            self.len(),
            None,
            |range| {
                range
                    .map(|idx| self.dist(idx / cols, idx % cols))
                    .filter(|d| *d > 0.0)
                    .min_by(|a, b| a.partial_cmp(b).unwrap())
            },
            |a: Option<f64>, b| match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        let cols = self.cols();
        if cols == 0 {
            return Vec::new();
        }
        // Materialise the full value set (the query is inherently O(m)),
        // then sort + dedup exactly like the dense backend so the two
        // produce identical vectors.
        let chunk = rayon::deterministic_chunk_len(self.len(), 1024);
        let mut v: Vec<f64> = (0..self.len())
            .into_par_iter()
            .with_min_len(chunk)
            .map(|idx| self.dist(idx / cols, idx % cols))
            .collect();
        v.par_sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        v
    }

    fn memory_bytes(&self) -> u64 {
        let from = Self::point_bytes(&self.from);
        if Arc::ptr_eq(&self.from, &self.to) {
            from
        } else {
            from + Self::point_bytes(&self.to)
        }
    }

    fn backend(&self) -> Backend {
        Backend::Implicit
    }
}

impl DistanceOracle for DistanceMatrix {
    fn rows(&self) -> usize {
        DistanceMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DistanceMatrix::cols(self)
    }

    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        self.get(row, col)
    }

    fn row_to_vec(&self, row: usize) -> Vec<f64> {
        self.row(row).to_vec()
    }

    fn col_to_vec(&self, col: usize) -> Vec<f64> {
        DistanceMatrix::col_to_vec(self, col)
    }

    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        DistanceMatrix::row_min(self, row)
    }

    fn max_entry(&self) -> f64 {
        DistanceMatrix::max_entry(self)
    }

    fn min_positive_entry(&self) -> Option<f64> {
        DistanceMatrix::min_positive_entry(self)
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        DistanceMatrix::sorted_distinct_values(self)
    }

    fn memory_bytes(&self) -> u64 {
        (DistanceMatrix::len(self) * std::mem::size_of::<f64>()) as u64
    }

    fn backend(&self) -> Backend {
        Backend::Dense
    }
}

/// The concrete oracle stored inside every instance: one of the two
/// backends, dispatched statically per call.
#[derive(Debug, Clone, PartialEq)]
pub enum Oracle {
    /// Distances materialised in a [`DistanceMatrix`].
    Dense(DistanceMatrix),
    /// Distances computed on demand from stored points.
    Implicit(ImplicitMetric),
}

impl Oracle {
    /// The wrapped dense matrix, if this is the dense backend.
    pub fn as_dense(&self) -> Option<&DistanceMatrix> {
        match self {
            Oracle::Dense(m) => Some(m),
            Oracle::Implicit(_) => None,
        }
    }

    /// The wrapped implicit metric, if this is the implicit backend.
    pub fn as_implicit(&self) -> Option<&ImplicitMetric> {
        match self {
            Oracle::Dense(_) => None,
            Oracle::Implicit(im) => Some(im),
        }
    }

    /// Checks symmetry of a square oracle up to `tol` (O(n²) queries).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows() != self.cols() {
            return false;
        }
        for r in 0..self.rows() {
            for c in (r + 1)..self.cols() {
                if (self.dist(r, c) - self.dist(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident ( $($arg:expr),* )) => {
        match $self {
            Oracle::Dense(inner) => DistanceOracle::$m(inner $(, $arg)*),
            Oracle::Implicit(inner) => DistanceOracle::$m(inner $(, $arg)*),
        }
    };
}

impl DistanceOracle for Oracle {
    fn rows(&self) -> usize {
        delegate!(self, rows())
    }

    fn cols(&self) -> usize {
        delegate!(self, cols())
    }

    fn len(&self) -> usize {
        delegate!(self, len())
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        delegate!(self, dist(row, col))
    }

    fn row_to_vec(&self, row: usize) -> Vec<f64> {
        delegate!(self, row_to_vec(row))
    }

    fn col_to_vec(&self, col: usize) -> Vec<f64> {
        delegate!(self, col_to_vec(col))
    }

    fn nearest_in_set(&self, row: usize, set: &[usize]) -> Option<(usize, f64)> {
        delegate!(self, nearest_in_set(row, set))
    }

    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        delegate!(self, row_min(row))
    }

    fn max_entry(&self) -> f64 {
        delegate!(self, max_entry())
    }

    fn min_positive_entry(&self) -> Option<f64> {
        delegate!(self, min_positive_entry())
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        delegate!(self, sorted_distinct_values())
    }

    fn memory_bytes(&self) -> u64 {
        delegate!(self, memory_bytes())
    }

    fn backend(&self) -> Backend {
        delegate!(self, backend())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> (Vec<Point>, Vec<Point>) {
        let clients: Vec<Point> = (0..13)
            .map(|i| Point::xy(i as f64 * 1.5, ((i * i) % 7) as f64))
            .collect();
        let facilities: Vec<Point> = (0..5).map(|i| Point::xy(i as f64 * 4.0, 2.0)).collect();
        (clients, facilities)
    }

    fn pair() -> (Oracle, Oracle) {
        let (clients, facilities) = points();
        let dense = Oracle::Dense(DistanceMatrix::between(
            &clients,
            &facilities,
            DistanceKind::Euclidean,
        ));
        let implicit = Oracle::Implicit(ImplicitMetric::between(
            clients,
            facilities,
            DistanceKind::Euclidean,
        ));
        (dense, implicit)
    }

    #[test]
    fn backends_agree_entrywise_bit_for_bit() {
        let (dense, implicit) = pair();
        assert_eq!(dense.rows(), implicit.rows());
        assert_eq!(dense.cols(), implicit.cols());
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                assert_eq!(dense.dist(r, c).to_bits(), implicit.dist(r, c).to_bits());
            }
        }
    }

    #[test]
    fn backends_agree_on_scans_and_queries() {
        let (dense, implicit) = pair();
        assert_eq!(dense.max_entry(), implicit.max_entry());
        assert_eq!(dense.min_positive_entry(), implicit.min_positive_entry());
        assert_eq!(
            dense.sorted_distinct_values(),
            implicit.sorted_distinct_values()
        );
        for r in 0..dense.rows() {
            assert_eq!(dense.row_to_vec(r), implicit.row_to_vec(r));
            assert_eq!(dense.row_min(r), implicit.row_min(r));
            assert_eq!(
                dense.nearest_in_set(r, &[4, 1, 2]),
                implicit.nearest_in_set(r, &[4, 1, 2])
            );
        }
        for c in 0..dense.cols() {
            assert_eq!(dense.col_to_vec(c), implicit.col_to_vec(c));
        }
    }

    #[test]
    fn memory_is_matrix_sized_vs_point_sized() {
        let (dense, implicit) = pair();
        assert_eq!(dense.memory_bytes(), (13 * 5 * 8) as u64);
        // Implicit: 18 points, 2 coords each, plus Point headers — far less
        // than the matrix once dimensions grow, and O(rows + cols) always.
        let per_point = (std::mem::size_of::<Point>() + 2 * 8) as u64;
        assert_eq!(implicit.memory_bytes(), 18 * per_point);
        assert_eq!(dense.backend(), Backend::Dense);
        assert_eq!(implicit.backend(), Backend::Implicit);
    }

    #[test]
    fn symmetric_points_counted_once() {
        let pts: Vec<Point> = (0..10).map(|i| Point::scalar(i as f64)).collect();
        let shared = ImplicitMetric::symmetric(pts.clone(), DistanceKind::Euclidean);
        let split = ImplicitMetric::between(pts.clone(), pts, DistanceKind::Euclidean);
        assert_eq!(shared.memory_bytes() * 2, split.memory_bytes());
        assert_eq!(DistanceOracle::rows(&shared), 10);
        assert_eq!(DistanceOracle::cols(&shared), 10);
        assert_eq!(shared.dist(3, 7), 4.0);
        assert_eq!(shared.dist(7, 3), 4.0);
    }

    #[test]
    fn oracle_symmetry_check() {
        let pts: Vec<Point> = (0..6).map(|i| Point::xy(i as f64, 1.0)).collect();
        let o = Oracle::Implicit(ImplicitMetric::symmetric(pts, DistanceKind::Euclidean));
        assert!(o.is_symmetric(1e-12));
        let (rect, _) = pair();
        assert!(
            !rect.is_symmetric(1e-12),
            "rectangular oracle is not symmetric"
        );
    }

    #[test]
    fn blocked_sweeps_are_chunk_exact() {
        // The sweep must see every index exactly once regardless of len.
        for len in [0usize, 1, 5, 1023, 1024, 1025, 5000] {
            let count = blocked_sweep(len, 0usize, |r| r.len(), |a, b| a + b);
            assert_eq!(count, len);
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn implicit_rejects_non_finite_coordinates() {
        let _ = ImplicitMetric::between(
            vec![Point::xy(0.0, f64::NAN)],
            vec![Point::xy(1.0, 1.0)],
            DistanceKind::Euclidean,
        );
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn implicit_rejects_mixed_dimensions() {
        let _ = ImplicitMetric::symmetric(
            vec![Point::scalar(1.0), Point::xy(1.0, 2.0)],
            DistanceKind::Euclidean,
        );
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn implicit_rejects_cross_side_dimension_mismatch() {
        let _ = ImplicitMetric::between(
            vec![Point::scalar(1.0)],
            vec![Point::xy(1.0, 2.0)],
            DistanceKind::Euclidean,
        );
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("dense".parse::<Backend>().unwrap(), Backend::Dense);
        assert_eq!("Implicit".parse::<Backend>().unwrap(), Backend::Implicit);
        assert!("sparse".parse::<Backend>().is_err());
        assert_eq!(Backend::Implicit.to_string(), "implicit");
        assert_eq!(Backend::default(), Backend::Dense);
    }
}
