//! Distance oracles: uniform access to distances — dense, implicit or
//! index-accelerated.
//!
//! The paper's algorithms only ever *read* distances — `d(j, i)` lookups,
//! row/column scans, nearest-in-set queries — so nothing forces the
//! `|C| × |F|` matrix to exist in memory. Following the move of Dhulipala,
//! Blelloch & Shun (swap concrete containers for an implicit access
//! interface and keep the algorithms unchanged), this module abstracts the
//! distance source behind the [`DistanceOracle`] trait with three backends:
//!
//! * [`Oracle::Dense`] wraps the existing [`DistanceMatrix`] — `O(|C|·|F|)`
//!   memory, `O(1)` lookups; the right choice up to a few thousand nodes.
//! * [`Oracle::Implicit`] ([`ImplicitMetric`]) stores only the geometric
//!   [`Point`]s and computes distances on demand — `O(|C| + |F|)` memory,
//!   `O(dim)` lookups; feasible at 100k–1M clients, but every structured
//!   query (`nearest_in_set`, `row_min`, threshold neighbourhoods) is still
//!   a full O(n) sweep.
//! * [`Oracle::Spatial`] ([`SpatialOracle`]) wraps the same
//!   [`ImplicitMetric`] **plus** deterministic exact spatial indexes from
//!   `parfaclo-spatial` over each point side, answering the structured
//!   queries sublinearly — the path that makes the 10M-point `xxlarge`
//!   preset practical.
//!
//! All backends produce **bit-identical** distances for instances built
//! from the same point set (the dense matrix stores exactly the values
//! `Point::distance` computes, and the spatial indexes evaluate the same
//! arithmetic), and every query resolves ties by the same canonical rule
//! (lowest index wins), so every solver in the workspace emits
//! byte-identical canonical Run JSON under any backend. Whole-oracle sweeps
//! (`max_entry`, `min_positive_entry`, `sorted_distinct_values`) run as
//! deterministic blocked sweeps chunked by
//! [`rayon::deterministic_chunk_len`] — boundaries are a pure function of
//! the element count, never the thread count — with partials combined
//! left-to-right, preserving the workspace-wide determinism contract.

use crate::distmat::DistanceMatrix;
use crate::point::{DistanceKind, Point};
use parfaclo_kernel::{block, SoaPoints};
use parfaclo_spatial::SpatialIndex;
use rayon::prelude::*;
use std::sync::Arc;

/// Which distance backend an instance carries. Stable string forms
/// (`"dense"` / `"implicit"` / `"spatial"`) are used by the CLI, Run JSON
/// timing metadata and the BENCH artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Distances materialised in a row-major [`DistanceMatrix`].
    #[default]
    Dense,
    /// Distances computed on demand from stored [`Point`]s.
    Implicit,
    /// Implicit distances plus exact spatial indexes serving the
    /// structured queries sublinearly.
    Spatial,
}

impl Backend {
    /// Stable string form (`"dense"` / `"implicit"` / `"spatial"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Dense => "dense",
            Backend::Implicit => "implicit",
            Backend::Spatial => "spatial",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_lowercase().as_str() {
            "dense" => Ok(Backend::Dense),
            "implicit" => Ok(Backend::Implicit),
            "spatial" => Ok(Backend::Spatial),
            other => Err(format!(
                "unknown backend '{other}' (expected dense|implicit|spatial)"
            )),
        }
    }
}

/// Cap on the transient buffer [`DistanceOracle::sorted_distinct_values`]
/// materialises (`8·rows·cols` bytes) — the same 4 GiB ceiling the dense
/// structures use. [`DistanceOracle::try_sorted_distinct_values`] refuses
/// past it instead of OOM-ing.
pub const DISTINCT_VALUES_BYTES_CAP: u64 = 4 << 30;

/// Flattens points into the coordinate array a [`SpatialIndex`] (or an
/// [`SoaPoints`]) consumes.
fn flatten(points: &[Point]) -> (Vec<f64>, usize) {
    let dim = points.first().map_or(0, Point::dim);
    let mut coords = Vec::with_capacity(points.len() * dim);
    for p in points {
        coords.extend_from_slice(p.coords());
    }
    (coords, dim)
}

/// Read-only access to a (rectangular) matrix of distances.
///
/// `rows` index clients / query points, `cols` index facilities / centers;
/// for clustering instances the oracle is square and symmetric. Every
/// method must be deterministic — in particular independent of thread
/// count — because solver output is compared byte-for-byte across
/// backends, policies and pool sizes.
pub trait DistanceOracle {
    /// Number of rows (clients / nodes).
    fn rows(&self) -> usize;

    /// Number of columns (facilities / nodes).
    fn cols(&self) -> usize;

    /// Total number of logical entries `rows * cols` (the paper's `m`).
    fn len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Whether the oracle has no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance `d(row, col)`.
    fn dist(&self, row: usize, col: usize) -> f64;

    /// Writes `d(row, col_start + j)` into `out[j]` for the contiguous
    /// column range `col_start .. col_start + out.len()`. The batch entry
    /// point the point-backed backends serve with one blocked SoA kernel
    /// call; the default is the equivalent scalar loop, so values are
    /// bit-identical either way.
    fn row_range_into(&self, row: usize, col_start: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.dist(row, col_start + j);
        }
    }

    /// Writes `d(row_start + j, col)` into `out[j]` for the contiguous row
    /// range `row_start .. row_start + out.len()` (the column-direction
    /// counterpart of [`DistanceOracle::row_range_into`]).
    fn col_range_into(&self, col: usize, row_start: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.dist(row_start + j, col);
        }
    }

    /// Writes `d(row, cols[j])` into `out[j]` — the irregular-subset batch
    /// form (candidate scans over a presorted order, pruning sums over the
    /// live set). Bit-identical to the scalar loop at any subset.
    fn row_gather(&self, row: usize, cols: &[usize], out: &mut [f64]) {
        for (o, &c) in out.iter_mut().zip(cols) {
            *o = self.dist(row, c);
        }
    }

    /// Writes `d(rows[j], col)` into `out[j]` (the column-direction
    /// counterpart of [`DistanceOracle::row_gather`]).
    fn col_gather(&self, col: usize, rows: &[usize], out: &mut [f64]) {
        for (o, &r) in out.iter_mut().zip(rows) {
            *o = self.dist(r, col);
        }
    }

    /// Row `row` collected into a vector (`O(cols)` work; one blocked
    /// kernel call on the point-backed backends via
    /// [`DistanceOracle::row_range_into`]).
    fn row_to_vec(&self, row: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.cols()];
        self.row_range_into(row, 0, &mut v);
        v
    }

    /// Column `col` collected into a vector (`O(rows)` work).
    fn col_to_vec(&self, col: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.rows()];
        self.col_range_into(col, 0, &mut v);
        v
    }

    /// `min_{c in set} d(row, c)` with the argmin. `None` if `set` is empty.
    ///
    /// **Tie-breaking is part of the contract**: among equidistant columns
    /// the *lowest column index* wins, regardless of the order the indices
    /// appear in `set`. Every backend — scan-based or index-served — must
    /// return the same `(index, distance)` pair bit for bit; this is the
    /// specification the spatial backend's index queries are held to (and
    /// what the equidistant-point regression tests assert).
    fn nearest_in_set(&self, row: usize, set: &[usize]) -> Option<(usize, f64)> {
        set.iter()
            .map(|&c| (c, self.dist(row, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
    }

    /// [`DistanceOracle::nearest_in_set`] for **every row at once** against
    /// one fixed set — the batched form the index-accelerated backend turns
    /// into one subset-index build plus a sublinear query per row. Answers
    /// are positionally identical to calling `nearest_in_set` per row.
    fn nearest_in_set_all(&self, set: &[usize]) -> Vec<Option<(usize, f64)>> {
        (0..self.rows())
            .map(|r| self.nearest_in_set(r, set))
            .collect()
    }

    /// Minimum entry of a row together with the column index attaining it
    /// (ties towards the *smaller index* — same canonical rule as
    /// [`DistanceOracle::nearest_in_set`]); `None` for zero columns.
    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        (0..self.cols())
            .map(|c| (c, self.dist(row, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
    }

    /// Row indices `r` with `d(r, col) <= radius` (inclusive), ascending —
    /// the threshold-neighbourhood query behind the bipartite graph `H` of
    /// Algorithm 4.1 and the dual-feasibility sums. O(rows) by scan here;
    /// sublinear on the spatial backend.
    fn rows_within(&self, col: usize, radius: f64) -> Vec<usize> {
        (0..self.rows())
            .filter(|&r| self.dist(r, col) <= radius)
            .collect()
    }

    /// Column indices `c` with `d(row, c) <= radius` (inclusive), ascending
    /// — the threshold-graph neighbourhood (`H_α` of Section 6.1) of a node
    /// on square oracles. O(cols) by scan here; sublinear on the spatial
    /// backend.
    ///
    /// **Contract (all backends):** the returned indices are strictly
    /// ascending with no duplicates, and the radius comparison is inclusive
    /// (`<=`, bit-exact on the same distance arithmetic as [`dist`]). The
    /// CSR threshold-graph builder relies on this ordering to produce
    /// byte-identical adjacency arrays from every backend without a sort —
    /// an implementation returning the same set in a different order would
    /// silently break cross-backend conformance. Regression-tested per
    /// backend in `cols_within_contract_holds_per_backend`.
    ///
    /// [`dist`]: DistanceOracle::dist
    fn cols_within(&self, row: usize, radius: f64) -> Vec<usize> {
        (0..self.cols())
            .filter(|&c| self.dist(row, c) <= radius)
            .collect()
    }

    /// Maximum entry over the whole oracle (0.0 when empty).
    fn max_entry(&self) -> f64;

    /// Minimum strictly positive entry, if any (`None` when every entry is
    /// zero or the oracle is empty).
    ///
    /// # Contract
    ///
    /// The returned value anchors the primal-dual dual-level ladder when
    /// preprocessing is disabled (`α₀ = min_pos/m²`), and through it the
    /// bucket event engine's geometric bucket keys, so it must be:
    ///
    /// * **exact** — the bit-exact smallest entry satisfying `d > 0.0`, not
    ///   an approximation (`-0.0` and `+0.0` are both excluded; denormals
    ///   are positive and therefore *included*);
    /// * **backend-invariant** — dense, implicit and spatial oracles over
    ///   the same instance return the same bits (the blocked kernels
    ///   evaluate the same arithmetic as the scalar path); and
    /// * **thread-invariant** — parallel sweeps chunk by
    ///   `deterministic_chunk_len` and combine partials with the exact
    ///   `f64::min` (associative and commutative on non-NaN values), so the
    ///   result is a pure function of the entries.
    fn min_positive_entry(&self) -> Option<f64>;

    /// All distinct entry values, sorted ascending (the k-center binary
    /// search's distance set `D`). `O(rows·cols)` time *and* transient
    /// memory under every backend — callers that need bounded memory must
    /// go through [`DistanceOracle::try_sorted_distinct_values`] instead.
    fn sorted_distinct_values(&self) -> Vec<f64>;

    /// [`DistanceOracle::sorted_distinct_values`] behind a memory guard:
    /// refuses (instead of OOM-ing) when the `8·rows·cols`-byte transient
    /// would exceed [`DISTINCT_VALUES_BYTES_CAP`] — the same 4 GiB ceiling
    /// (and refusal style) as the dense adjacency matrix and the dominator
    /// solvers' threshold derivation.
    fn try_sorted_distinct_values(&self) -> Result<Vec<f64>, String> {
        let bytes = (self.len() as u64).saturating_mul(8);
        if bytes > DISTINCT_VALUES_BYTES_CAP {
            return Err(format!(
                "deriving the candidate radii sorts all {}×{} pairwise distances \
                 ({:.1} GiB of scratch); this query is refused past the 4 GiB cap — \
                 use a smaller instance, or a solver that does not binary-search \
                 the full distance set",
                self.rows(),
                self.cols(),
                bytes as f64 / (1u64 << 30) as f64,
            ));
        }
        Ok(self.sorted_distinct_values())
    }

    /// Estimated resident bytes of the backend's distance storage:
    /// `8·rows·cols` for dense, `O((rows + cols)·dim)` for implicit.
    fn memory_bytes(&self) -> u64;

    /// Which backend answers the queries.
    fn backend(&self) -> Backend;

    /// Whether the structured queries ([`nearest_in_set_all`],
    /// [`rows_within`], [`cols_within`], [`row_min`]) are served sublinearly
    /// by an index rather than by O(n) scans. Callers that keep a cheaper
    /// scan-side short circuit (e.g. filtering a `remaining` mask *before*
    /// computing distances) branch on this capability — never on the
    /// concrete backend — and the answers are identical either way.
    ///
    /// [`nearest_in_set_all`]: DistanceOracle::nearest_in_set_all
    /// [`rows_within`]: DistanceOracle::rows_within
    /// [`cols_within`]: DistanceOracle::cols_within
    /// [`row_min`]: DistanceOracle::row_min
    fn has_sublinear_queries(&self) -> bool {
        false
    }

    /// Whether the batch entry points ([`row_range_into`], [`row_gather`]
    /// and friends) are served by the blocked SoA kernels rather than by
    /// per-pair scalar loops. Callers use this the way they use
    /// [`has_sublinear_queries`]: to pick between a batch-shaped and a
    /// lookup-shaped formulation of the *same* computation — the answers
    /// are bit-identical either way, only the speed differs.
    ///
    /// [`row_range_into`]: DistanceOracle::row_range_into
    /// [`row_gather`]: DistanceOracle::row_gather
    /// [`has_sublinear_queries`]: DistanceOracle::has_sublinear_queries
    fn has_batch_distance_kernels(&self) -> bool {
        false
    }
}

/// Runs `f` over `0..len` in deterministic blocks and combines the per-block
/// results left-to-right with `combine`. Block boundaries come from
/// [`rayon::deterministic_chunk_len`] — a pure function of `len` — so the
/// combine tree (and therefore any floating-point result) is identical at
/// every thread count.
fn blocked_sweep<T: Send>(
    len: usize,
    init: T,
    f: impl Fn(std::ops::Range<usize>) -> T + Sync,
    combine: impl Fn(T, T) -> T,
) -> T {
    if len == 0 {
        return init;
    }
    let chunk = rayon::deterministic_chunk_len(len, 1024);
    let starts: Vec<usize> = (0..len).step_by(chunk).collect();
    let partials: Vec<T> = starts
        .par_iter()
        .map(|&s| f(s..(s + chunk).min(len)))
        .collect();
    partials.into_iter().fold(init, combine)
}

/// The implicit geometric backend: two point sets and a distance function.
///
/// Entry `(r, c)` is `from[r].distance(to[c], kind)`, computed on every
/// access. Each side is stored twice: as the [`Point`]s the per-pair
/// lookups read, and as a structure-of-arrays [`SoaPoints`] copy the
/// blocked batch kernels stream — built once at construction,
/// `O((rows + cols)·dim)` extra memory, bit-identical values. For symmetric
/// (clustering) oracles `from` and `to` share one allocation on both
/// representations ([`ImplicitMetric::symmetric`]), which [`memory_bytes`]
/// counts once.
///
/// [`memory_bytes`]: DistanceOracle::memory_bytes
#[derive(Debug, Clone)]
pub struct ImplicitMetric {
    from: Arc<[Point]>,
    to: Arc<[Point]>,
    from_soa: Arc<SoaPoints>,
    to_soa: Arc<SoaPoints>,
    kind: DistanceKind,
}

impl PartialEq for ImplicitMetric {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.from[..] == other.from[..] && self.to[..] == other.to[..]
    }
}

impl ImplicitMetric {
    /// Validates one side's points (`O(points · dim)` — the same class of
    /// up-front cost the dense backend pays to assert its entries are finite
    /// and non-negative): every coordinate finite, every point of one
    /// dimension. Returns that dimension (0 for an empty side).
    fn checked_dim(points: &[Point], side: &str) -> usize {
        let dim = points.first().map_or(0, Point::dim);
        for p in points {
            assert_eq!(p.dim(), dim, "{side} points must have equal dimension");
            assert!(
                p.coords().iter().all(|c| c.is_finite()),
                "{side} point coordinates must be finite"
            );
        }
        dim
    }

    /// Creates a rectangular implicit oracle between two point sets.
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite or the points do not all share
    /// one dimension — the same invariant the dense backend enforces on its
    /// entries at construction, checked here in `O(|from| + |to|)`.
    pub fn between(from: Vec<Point>, to: Vec<Point>, kind: DistanceKind) -> Self {
        let from_dim = Self::checked_dim(&from, "row-side");
        let to_dim = Self::checked_dim(&to, "column-side");
        assert!(
            from.is_empty() || to.is_empty() || from_dim == to_dim,
            "row-side and column-side points must have equal dimension \
             ({from_dim} vs {to_dim})"
        );
        let from_soa = Arc::new(Self::soa_of(&from));
        let to_soa = Arc::new(Self::soa_of(&to));
        ImplicitMetric {
            from: from.into(),
            to: to.into(),
            from_soa,
            to_soa,
            kind,
        }
    }

    /// Creates a square symmetric implicit oracle over one point set (the
    /// points are stored once and shared between the row and column sides).
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite or the points do not all share
    /// one dimension (see [`ImplicitMetric::between`]).
    pub fn symmetric(points: Vec<Point>, kind: DistanceKind) -> Self {
        Self::checked_dim(&points, "node");
        let soa: Arc<SoaPoints> = Arc::new(Self::soa_of(&points));
        let shared: Arc<[Point]> = points.into();
        ImplicitMetric {
            from: Arc::clone(&shared),
            to: shared,
            from_soa: Arc::clone(&soa),
            to_soa: soa,
            kind,
        }
    }

    /// The structure-of-arrays copy of one point side.
    fn soa_of(points: &[Point]) -> SoaPoints {
        let (coords, dim) = flatten(points);
        SoaPoints::from_flat(&coords, dim, points.len())
    }

    /// The row-side (client) points.
    pub fn from_points(&self) -> &[Point] {
        &self.from
    }

    /// The column-side (facility) points.
    pub fn to_points(&self) -> &[Point] {
        &self.to
    }

    /// The distance function entries are computed with.
    pub fn kind(&self) -> DistanceKind {
        self.kind
    }

    /// Whether the row and column sides share one point allocation (true
    /// for oracles built with [`ImplicitMetric::symmetric`]).
    pub fn sides_shared(&self) -> bool {
        Arc::ptr_eq(&self.from, &self.to)
    }

    fn point_bytes(points: &[Point]) -> u64 {
        points
            .iter()
            .map(|p| (std::mem::size_of::<Point>() + p.dim() * std::mem::size_of::<f64>()) as u64)
            .sum()
    }

    /// Decomposes a flat entry range (row-major `idx = row·cols + col`) into
    /// per-row contiguous column segments, in ascending order — the shape
    /// the blocked sweeps hand to the range kernels.
    fn for_row_segments(
        &self,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(usize, usize, usize),
    ) {
        let cols = self.cols();
        let mut idx = range.start;
        while idx < range.end {
            let row = idx / cols;
            let col = idx % cols;
            let len = (cols - col).min(range.end - idx);
            f(row, col, len);
            idx += len;
        }
    }
}

impl DistanceOracle for ImplicitMetric {
    fn rows(&self) -> usize {
        self.from.len()
    }

    fn cols(&self) -> usize {
        self.to.len()
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        self.from[row].distance(&self.to[col], self.kind)
    }

    fn row_range_into(&self, row: usize, col_start: usize, out: &mut [f64]) {
        block::dist_range(
            self.kind,
            self.from[row].coords(),
            &self.to_soa,
            col_start,
            out,
        );
    }

    fn col_range_into(&self, col: usize, row_start: usize, out: &mut [f64]) {
        // The kernel computes (facility − client) displacements where the
        // scalar path computes (client − facility): IEEE negation symmetry
        // (see `DistanceKind::distance`) makes the values bit-identical.
        block::dist_range(
            self.kind,
            self.to[col].coords(),
            &self.from_soa,
            row_start,
            out,
        );
    }

    fn row_gather(&self, row: usize, cols: &[usize], out: &mut [f64]) {
        block::dist_gather(self.kind, self.from[row].coords(), &self.to_soa, cols, out);
    }

    fn col_gather(&self, col: usize, rows: &[usize], out: &mut [f64]) {
        block::dist_gather(self.kind, self.to[col].coords(), &self.from_soa, rows, out);
    }

    fn nearest_in_set(&self, row: usize, set: &[usize]) -> Option<(usize, f64)> {
        let q = self.from[row].coords();
        let mut buf = [0.0f64; block::TILE];
        let mut best: Option<(usize, f64)> = None;
        for chunk in set.chunks(block::TILE) {
            block::dist_gather(self.kind, q, &self.to_soa, chunk, &mut buf[..chunk.len()]);
            for (&c, &d) in chunk.iter().zip(&buf[..chunk.len()]) {
                // Lexicographic minimum of (distance, column index) — the
                // documented tie-breaking contract.
                if best.map_or(true, |(bc, bd)| d < bd || (d == bd && c < bc)) {
                    best = Some((c, d));
                }
            }
        }
        best
    }

    fn nearest_in_set_all(&self, set: &[usize]) -> Vec<Option<(usize, f64)>> {
        if set.is_empty() {
            return vec![None; self.rows()];
        }
        // Gather the candidate side once into a compact SoA tile the scan
        // streams per row; ids ride along so ties keep resolving to the
        // lowest column index.
        let ids: Vec<u32> = set
            .iter()
            .map(|&c| u32::try_from(c).expect("column index fits u32"))
            .collect();
        let sub = self.to_soa.gather(&ids);
        let chunk = rayon::deterministic_chunk_len(self.rows(), 256);
        self.from
            .par_iter()
            .with_min_len(chunk)
            .map(|p| {
                block::argmin_ids(self.kind, p.coords(), &sub, &ids).map(|(id, d)| (id as usize, d))
            })
            .collect()
    }

    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        block::argmin_range(
            self.kind,
            self.from[row].coords(),
            &self.to_soa,
            0,
            self.cols(),
        )
    }

    fn rows_within(&self, col: usize, radius: f64) -> Vec<usize> {
        if self.rows() == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        block::collect_within(
            self.kind,
            self.to[col].coords(),
            &self.from_soa,
            0,
            self.rows(),
            radius,
            &mut out,
        );
        out
    }

    fn cols_within(&self, row: usize, radius: f64) -> Vec<usize> {
        if self.cols() == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        block::collect_within(
            self.kind,
            self.from[row].coords(),
            &self.to_soa,
            0,
            self.cols(),
            radius,
            &mut out,
        );
        out
    }

    fn max_entry(&self) -> f64 {
        if self.cols() == 0 {
            return 0.0;
        }
        // Same blocked-sweep chunking as before the kernels; each chunk is
        // decomposed into row segments served by the range kernel. `max` is
        // an exact reduction, so the value is identical to the scalar fold.
        blocked_sweep(
            self.len(),
            0.0,
            |range| {
                let mut best = 0.0f64;
                self.for_row_segments(range, |row, col_start, len| {
                    best = best.max(block::max_in_range(
                        self.kind,
                        self.from[row].coords(),
                        &self.to_soa,
                        col_start,
                        len,
                    ));
                });
                best
            },
            f64::max,
        )
    }

    fn min_positive_entry(&self) -> Option<f64> {
        if self.cols() == 0 {
            return None;
        }
        blocked_sweep(
            self.len(),
            None,
            |range| {
                let mut best: Option<f64> = None;
                self.for_row_segments(range, |row, col_start, len| {
                    if let Some(d) = block::min_positive_in_range(
                        self.kind,
                        self.from[row].coords(),
                        &self.to_soa,
                        col_start,
                        len,
                    ) {
                        best = Some(best.map_or(d, |b| b.min(d)));
                    }
                });
                best
            },
            |a: Option<f64>, b| match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            },
        )
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        let cols = self.cols();
        if cols == 0 {
            return Vec::new();
        }
        // Materialise the full value set (the query is inherently O(m)) one
        // kernel-filled row per chunk, then sort + dedup exactly like the
        // dense backend so the two produce identical vectors.
        let mut v = vec![0.0; self.len()];
        let chunk = rayon::deterministic_chunk_len(self.rows(), 64);
        v.par_chunks_mut(cols)
            .with_min_len(chunk)
            .enumerate()
            .for_each(|(r, out)| self.row_range_into(r, 0, out));
        v.par_sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        v
    }

    fn memory_bytes(&self) -> u64 {
        let shared = Arc::ptr_eq(&self.from, &self.to);
        let points = if shared {
            Self::point_bytes(&self.from)
        } else {
            Self::point_bytes(&self.from) + Self::point_bytes(&self.to)
        };
        let soa = if Arc::ptr_eq(&self.from_soa, &self.to_soa) {
            self.from_soa.memory_bytes() as u64
        } else {
            (self.from_soa.memory_bytes() + self.to_soa.memory_bytes()) as u64
        };
        points + soa
    }

    fn backend(&self) -> Backend {
        Backend::Implicit
    }

    fn has_batch_distance_kernels(&self) -> bool {
        true
    }
}

/// The index-accelerated backend: an [`ImplicitMetric`] plus one exact
/// [`SpatialIndex`] per point side.
///
/// Plain entry access and the whole-oracle sweeps delegate to the wrapped
/// implicit metric unchanged (bit-identical values, identical blocked-sweep
/// chunking). The structured queries are routed through the indexes:
///
/// * [`row_min`] — nearest-facility query against the column-side index;
/// * [`nearest_in_set_all`] — one deterministic subset-index build over the
///   set, then a sublinear nearest query per row;
/// * [`rows_within`] / [`cols_within`] — range queries against the
///   row/column-side index.
///
/// Every answer is bit-identical to the implicit backend's linear sweep,
/// including the canonical lowest-index tie-breaking — `parfaclo-spatial`'s
/// indexes compute the same distance arithmetic and never prune an
/// equal-bound subtree. Index construction is itself deterministic (a pure
/// function of the point set, at any thread count).
///
/// For symmetric (clustering) oracles the two sides share one index, which
/// [`memory_bytes`] counts once.
///
/// [`row_min`]: DistanceOracle::row_min
/// [`nearest_in_set_all`]: DistanceOracle::nearest_in_set_all
/// [`rows_within`]: DistanceOracle::rows_within
/// [`cols_within`]: DistanceOracle::cols_within
/// [`memory_bytes`]: DistanceOracle::memory_bytes
#[derive(Debug, Clone)]
pub struct SpatialOracle {
    metric: ImplicitMetric,
    /// Index over the row-side (client) points.
    row_index: Arc<SpatialIndex>,
    /// Index over the column-side (facility) points; shares the row index
    /// for symmetric oracles.
    col_index: Arc<SpatialIndex>,
}

impl PartialEq for SpatialOracle {
    fn eq(&self, other: &Self) -> bool {
        // The indexes are a pure function of the points, so metric equality
        // is oracle equality.
        self.metric == other.metric
    }
}

impl SpatialOracle {
    /// Builds the indexes around an existing implicit metric.
    pub fn from_implicit(metric: ImplicitMetric) -> Self {
        // Index construction is the dominant cost of the spatial backend's
        // build path, so it gets its own phase under an installed tracer.
        let _span = parfaclo_trace::timing_span("spatial-index");
        // `SpatialMetric` *is* `DistanceKind` (one shared kernel type), so
        // the kind flows straight into the index.
        let kind = metric.kind();
        let (from_coords, from_dim) = flatten(metric.from_points());
        let row_index = Arc::new(SpatialIndex::build(from_coords, from_dim, kind));
        let col_index = if metric.sides_shared() {
            Arc::clone(&row_index)
        } else {
            let (to_coords, to_dim) = flatten(metric.to_points());
            Arc::new(SpatialIndex::build(to_coords, to_dim, kind))
        };
        SpatialOracle {
            metric,
            row_index,
            col_index,
        }
    }

    /// Creates a rectangular index-accelerated oracle between two point
    /// sets (same validation as [`ImplicitMetric::between`]).
    pub fn between(from: Vec<Point>, to: Vec<Point>, kind: DistanceKind) -> Self {
        Self::from_implicit(ImplicitMetric::between(from, to, kind))
    }

    /// Creates a square symmetric index-accelerated oracle over one point
    /// set; both sides share one index.
    pub fn symmetric(points: Vec<Point>, kind: DistanceKind) -> Self {
        Self::from_implicit(ImplicitMetric::symmetric(points, kind))
    }

    /// The wrapped implicit metric.
    pub fn implicit(&self) -> &ImplicitMetric {
        &self.metric
    }

    /// The index over the row-side points.
    pub fn row_index(&self) -> &SpatialIndex {
        &self.row_index
    }

    /// The index over the column-side points.
    pub fn col_index(&self) -> &SpatialIndex {
        &self.col_index
    }
}

impl DistanceOracle for SpatialOracle {
    fn rows(&self) -> usize {
        self.metric.rows()
    }

    fn cols(&self) -> usize {
        self.metric.cols()
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        self.metric.dist(row, col)
    }

    fn row_range_into(&self, row: usize, col_start: usize, out: &mut [f64]) {
        self.metric.row_range_into(row, col_start, out);
    }

    fn col_range_into(&self, col: usize, row_start: usize, out: &mut [f64]) {
        self.metric.col_range_into(col, row_start, out);
    }

    fn row_gather(&self, row: usize, cols: &[usize], out: &mut [f64]) {
        self.metric.row_gather(row, cols, out);
    }

    fn col_gather(&self, col: usize, rows: &[usize], out: &mut [f64]) {
        self.metric.col_gather(col, rows, out);
    }

    fn nearest_in_set(&self, row: usize, set: &[usize]) -> Option<(usize, f64)> {
        self.metric.nearest_in_set(row, set)
    }

    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        if self.cols() == 0 {
            return None;
        }
        self.col_index
            .nearest(self.metric.from_points()[row].coords())
    }

    fn nearest_in_set_all(&self, set: &[usize]) -> Vec<Option<(usize, f64)>> {
        if set.is_empty() {
            return vec![None; self.rows()];
        }
        // One deterministic subset-index build over the set's points, ids
        // mapped back to the caller's column indices so tie-breaking matches
        // the scan rule (lowest column index wins)...
        let to = self.metric.to_points();
        let dim = to.first().map_or(0, Point::dim);
        let mut coords = Vec::with_capacity(set.len() * dim);
        let mut ids = Vec::with_capacity(set.len());
        for &c in set {
            coords.extend_from_slice(to[c].coords());
            ids.push(u32::try_from(c).expect("column index fits u32"));
        }
        let index = SpatialIndex::build_with_ids(coords, dim, self.metric.kind(), Some(ids));
        // ...then a sublinear query per row, in deterministic row order.
        let from = self.metric.from_points();
        let chunk = rayon::deterministic_chunk_len(from.len(), 256);
        from.par_iter()
            .with_min_len(chunk)
            .map(|p| index.nearest(p.coords()))
            .collect()
    }

    fn rows_within(&self, col: usize, radius: f64) -> Vec<usize> {
        if self.rows() == 0 {
            return Vec::new();
        }
        self.row_index
            .range(self.metric.to_points()[col].coords(), radius)
    }

    fn cols_within(&self, row: usize, radius: f64) -> Vec<usize> {
        if self.cols() == 0 {
            return Vec::new();
        }
        self.col_index
            .range(self.metric.from_points()[row].coords(), radius)
    }

    fn max_entry(&self) -> f64 {
        self.metric.max_entry()
    }

    fn min_positive_entry(&self) -> Option<f64> {
        self.metric.min_positive_entry()
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        self.metric.sorted_distinct_values()
    }

    fn memory_bytes(&self) -> u64 {
        let indexes = if Arc::ptr_eq(&self.row_index, &self.col_index) {
            self.row_index.memory_bytes()
        } else {
            self.row_index.memory_bytes() + self.col_index.memory_bytes()
        };
        self.metric.memory_bytes() + indexes
    }

    fn backend(&self) -> Backend {
        Backend::Spatial
    }

    fn has_sublinear_queries(&self) -> bool {
        true
    }

    fn has_batch_distance_kernels(&self) -> bool {
        true
    }
}

impl DistanceOracle for DistanceMatrix {
    fn rows(&self) -> usize {
        DistanceMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DistanceMatrix::cols(self)
    }

    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        self.get(row, col)
    }

    fn row_to_vec(&self, row: usize) -> Vec<f64> {
        self.row(row).to_vec()
    }

    fn col_to_vec(&self, col: usize) -> Vec<f64> {
        DistanceMatrix::col_to_vec(self, col)
    }

    fn row_range_into(&self, row: usize, col_start: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.row(row)[col_start..col_start + out.len()]);
    }

    fn row_gather(&self, row: usize, cols: &[usize], out: &mut [f64]) {
        let r = self.row(row);
        for (o, &c) in out.iter_mut().zip(cols) {
            *o = r[c];
        }
    }

    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        DistanceMatrix::row_min(self, row)
    }

    fn max_entry(&self) -> f64 {
        DistanceMatrix::max_entry(self)
    }

    fn min_positive_entry(&self) -> Option<f64> {
        DistanceMatrix::min_positive_entry(self)
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        DistanceMatrix::sorted_distinct_values(self)
    }

    fn memory_bytes(&self) -> u64 {
        (DistanceMatrix::len(self) * std::mem::size_of::<f64>()) as u64
    }

    fn backend(&self) -> Backend {
        Backend::Dense
    }
}

/// The concrete oracle stored inside every instance: one of the three
/// backends, dispatched statically per call.
#[derive(Debug, Clone, PartialEq)]
pub enum Oracle {
    /// Distances materialised in a [`DistanceMatrix`].
    Dense(DistanceMatrix),
    /// Distances computed on demand from stored points.
    Implicit(ImplicitMetric),
    /// Implicit distances plus exact spatial indexes.
    Spatial(SpatialOracle),
}

impl Oracle {
    /// The wrapped dense matrix, if this is the dense backend.
    pub fn as_dense(&self) -> Option<&DistanceMatrix> {
        match self {
            Oracle::Dense(m) => Some(m),
            _ => None,
        }
    }

    /// The implicit metric behind the oracle: the wrapped one for the
    /// implicit backend, the inner one for the spatial backend, `None` for
    /// dense.
    pub fn as_implicit(&self) -> Option<&ImplicitMetric> {
        match self {
            Oracle::Dense(_) => None,
            Oracle::Implicit(im) => Some(im),
            Oracle::Spatial(s) => Some(s.implicit()),
        }
    }

    /// The wrapped spatial oracle, if this is the spatial backend.
    pub fn as_spatial(&self) -> Option<&SpatialOracle> {
        match self {
            Oracle::Spatial(s) => Some(s),
            _ => None,
        }
    }

    /// Checks symmetry of a square oracle up to `tol` (O(n²) queries).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows() != self.cols() {
            return false;
        }
        for r in 0..self.rows() {
            for c in (r + 1)..self.cols() {
                if (self.dist(r, c) - self.dist(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident ( $($arg:expr),* )) => {
        match $self {
            Oracle::Dense(inner) => DistanceOracle::$m(inner $(, $arg)*),
            Oracle::Implicit(inner) => DistanceOracle::$m(inner $(, $arg)*),
            Oracle::Spatial(inner) => DistanceOracle::$m(inner $(, $arg)*),
        }
    };
}

impl DistanceOracle for Oracle {
    fn rows(&self) -> usize {
        delegate!(self, rows())
    }

    fn cols(&self) -> usize {
        delegate!(self, cols())
    }

    fn len(&self) -> usize {
        delegate!(self, len())
    }

    #[inline]
    fn dist(&self, row: usize, col: usize) -> f64 {
        delegate!(self, dist(row, col))
    }

    fn row_to_vec(&self, row: usize) -> Vec<f64> {
        delegate!(self, row_to_vec(row))
    }

    fn col_to_vec(&self, col: usize) -> Vec<f64> {
        delegate!(self, col_to_vec(col))
    }

    fn row_range_into(&self, row: usize, col_start: usize, out: &mut [f64]) {
        delegate!(self, row_range_into(row, col_start, out))
    }

    fn col_range_into(&self, col: usize, row_start: usize, out: &mut [f64]) {
        delegate!(self, col_range_into(col, row_start, out))
    }

    fn row_gather(&self, row: usize, cols: &[usize], out: &mut [f64]) {
        delegate!(self, row_gather(row, cols, out))
    }

    fn col_gather(&self, col: usize, rows: &[usize], out: &mut [f64]) {
        delegate!(self, col_gather(col, rows, out))
    }

    fn nearest_in_set(&self, row: usize, set: &[usize]) -> Option<(usize, f64)> {
        delegate!(self, nearest_in_set(row, set))
    }

    fn nearest_in_set_all(&self, set: &[usize]) -> Vec<Option<(usize, f64)>> {
        delegate!(self, nearest_in_set_all(set))
    }

    fn row_min(&self, row: usize) -> Option<(usize, f64)> {
        delegate!(self, row_min(row))
    }

    fn rows_within(&self, col: usize, radius: f64) -> Vec<usize> {
        delegate!(self, rows_within(col, radius))
    }

    fn cols_within(&self, row: usize, radius: f64) -> Vec<usize> {
        delegate!(self, cols_within(row, radius))
    }

    fn max_entry(&self) -> f64 {
        delegate!(self, max_entry())
    }

    fn min_positive_entry(&self) -> Option<f64> {
        delegate!(self, min_positive_entry())
    }

    fn sorted_distinct_values(&self) -> Vec<f64> {
        delegate!(self, sorted_distinct_values())
    }

    fn try_sorted_distinct_values(&self) -> Result<Vec<f64>, String> {
        delegate!(self, try_sorted_distinct_values())
    }

    fn memory_bytes(&self) -> u64 {
        delegate!(self, memory_bytes())
    }

    fn backend(&self) -> Backend {
        delegate!(self, backend())
    }

    fn has_sublinear_queries(&self) -> bool {
        delegate!(self, has_sublinear_queries())
    }

    fn has_batch_distance_kernels(&self) -> bool {
        delegate!(self, has_batch_distance_kernels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> (Vec<Point>, Vec<Point>) {
        let clients: Vec<Point> = (0..13)
            .map(|i| Point::xy(i as f64 * 1.5, ((i * i) % 7) as f64))
            .collect();
        let facilities: Vec<Point> = (0..5).map(|i| Point::xy(i as f64 * 4.0, 2.0)).collect();
        (clients, facilities)
    }

    fn pair() -> (Oracle, Oracle) {
        let (clients, facilities) = points();
        let dense = Oracle::Dense(DistanceMatrix::between(
            &clients,
            &facilities,
            DistanceKind::Euclidean,
        ));
        let implicit = Oracle::Implicit(ImplicitMetric::between(
            clients,
            facilities,
            DistanceKind::Euclidean,
        ));
        (dense, implicit)
    }

    fn triple() -> (Oracle, Oracle, Oracle) {
        let (dense, implicit) = pair();
        let (clients, facilities) = points();
        let spatial = Oracle::Spatial(SpatialOracle::between(
            clients,
            facilities,
            DistanceKind::Euclidean,
        ));
        (dense, implicit, spatial)
    }

    #[test]
    fn backends_agree_entrywise_bit_for_bit() {
        let (dense, implicit) = pair();
        assert_eq!(dense.rows(), implicit.rows());
        assert_eq!(dense.cols(), implicit.cols());
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                assert_eq!(dense.dist(r, c).to_bits(), implicit.dist(r, c).to_bits());
            }
        }
    }

    #[test]
    fn backends_agree_on_scans_and_queries() {
        let (dense, implicit) = pair();
        assert_eq!(dense.max_entry(), implicit.max_entry());
        assert_eq!(dense.min_positive_entry(), implicit.min_positive_entry());
        assert_eq!(
            dense.sorted_distinct_values(),
            implicit.sorted_distinct_values()
        );
        for r in 0..dense.rows() {
            assert_eq!(dense.row_to_vec(r), implicit.row_to_vec(r));
            assert_eq!(dense.row_min(r), implicit.row_min(r));
            assert_eq!(
                dense.nearest_in_set(r, &[4, 1, 2]),
                implicit.nearest_in_set(r, &[4, 1, 2])
            );
        }
        for c in 0..dense.cols() {
            assert_eq!(dense.col_to_vec(c), implicit.col_to_vec(c));
        }
    }

    #[test]
    fn min_positive_entry_agrees_bit_for_bit_across_all_backends() {
        // The primal-dual dual-level ladder (and through it the bucket event
        // engine's keys) anchors on this value, so the three backends must
        // return identical bits, not just approximately equal values.
        let (dense, implicit, spatial) = triple();
        let d = dense.min_positive_entry().expect("positive entries exist");
        let i = implicit
            .min_positive_entry()
            .expect("positive entries exist");
        let s = spatial
            .min_positive_entry()
            .expect("positive entries exist");
        assert_eq!(d.to_bits(), i.to_bits());
        assert_eq!(d.to_bits(), s.to_bits());
        // And it is exactly the scalar-scan answer.
        let mut expect = f64::INFINITY;
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.dist(r, c);
                if v > 0.0 {
                    expect = expect.min(v);
                }
            }
        }
        assert_eq!(d.to_bits(), expect.to_bits());
    }

    #[test]
    fn min_positive_entry_is_exact_about_zero_and_denormals() {
        // Strictly positive: +0.0 and -0.0 are excluded, denormals included
        // (they are positive numbers, and the event-engine bucket mapping
        // handles them).
        let tiny = f64::from_bits(1);
        let m = DistanceMatrix::from_rows(2, 2, vec![0.0, -0.0, tiny, 3.0]);
        let oracle = Oracle::Dense(m);
        assert_eq!(
            oracle.min_positive_entry().map(f64::to_bits),
            Some(tiny.to_bits())
        );
        let zeros = Oracle::Dense(DistanceMatrix::from_rows(2, 2, vec![0.0; 4]));
        assert_eq!(zeros.min_positive_entry(), None);
    }

    #[test]
    fn memory_is_matrix_sized_vs_point_sized() {
        let (dense, implicit) = pair();
        assert_eq!(dense.memory_bytes(), (13 * 5 * 8) as u64);
        // Implicit: 18 points, 2 coords each, stored as Points (headers +
        // coordinates) plus the SoA copy the kernels stream (coordinates
        // only) — still O(rows + cols), far less than the matrix once
        // dimensions grow.
        let per_point = (std::mem::size_of::<Point>() + 2 * 8) as u64;
        let soa_per_point = (2 * 8) as u64;
        assert_eq!(implicit.memory_bytes(), 18 * (per_point + soa_per_point));
        assert_eq!(dense.backend(), Backend::Dense);
        assert_eq!(implicit.backend(), Backend::Implicit);
    }

    #[test]
    fn symmetric_points_counted_once() {
        let pts: Vec<Point> = (0..10).map(|i| Point::scalar(i as f64)).collect();
        let shared = ImplicitMetric::symmetric(pts.clone(), DistanceKind::Euclidean);
        let split = ImplicitMetric::between(pts.clone(), pts, DistanceKind::Euclidean);
        assert_eq!(shared.memory_bytes() * 2, split.memory_bytes());
        assert_eq!(DistanceOracle::rows(&shared), 10);
        assert_eq!(DistanceOracle::cols(&shared), 10);
        assert_eq!(shared.dist(3, 7), 4.0);
        assert_eq!(shared.dist(7, 3), 4.0);
    }

    #[test]
    fn oracle_symmetry_check() {
        let pts: Vec<Point> = (0..6).map(|i| Point::xy(i as f64, 1.0)).collect();
        let o = Oracle::Implicit(ImplicitMetric::symmetric(pts, DistanceKind::Euclidean));
        assert!(o.is_symmetric(1e-12));
        let (rect, _) = pair();
        assert!(
            !rect.is_symmetric(1e-12),
            "rectangular oracle is not symmetric"
        );
    }

    #[test]
    fn blocked_sweeps_are_chunk_exact() {
        // The sweep must see every index exactly once regardless of len.
        for len in [0usize, 1, 5, 1023, 1024, 1025, 5000] {
            let count = blocked_sweep(len, 0usize, |r| r.len(), |a, b| a + b);
            assert_eq!(count, len);
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn implicit_rejects_non_finite_coordinates() {
        let _ = ImplicitMetric::between(
            vec![Point::xy(0.0, f64::NAN)],
            vec![Point::xy(1.0, 1.0)],
            DistanceKind::Euclidean,
        );
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn implicit_rejects_mixed_dimensions() {
        let _ = ImplicitMetric::symmetric(
            vec![Point::scalar(1.0), Point::xy(1.0, 2.0)],
            DistanceKind::Euclidean,
        );
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn implicit_rejects_cross_side_dimension_mismatch() {
        let _ = ImplicitMetric::between(
            vec![Point::scalar(1.0)],
            vec![Point::xy(1.0, 2.0)],
            DistanceKind::Euclidean,
        );
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("dense".parse::<Backend>().unwrap(), Backend::Dense);
        assert_eq!("Implicit".parse::<Backend>().unwrap(), Backend::Implicit);
        assert_eq!("spatial".parse::<Backend>().unwrap(), Backend::Spatial);
        assert!("sparse".parse::<Backend>().is_err());
        assert_eq!(Backend::Implicit.to_string(), "implicit");
        assert_eq!(Backend::Spatial.to_string(), "spatial");
        assert_eq!(Backend::default(), Backend::Dense);
    }

    /// Regression for the documented tie-breaking contract: among
    /// equidistant columns the lowest index wins, on every backend,
    /// regardless of the order the indices appear in the query set.
    #[test]
    fn equidistant_ties_resolve_to_lowest_index_on_every_backend() {
        // Four facilities at distance exactly 5 from both clients, plus a
        // far decoy; every column pair is an exact tie.
        let clients = vec![Point::xy(0.0, 0.0), Point::xy(0.0, 0.0)];
        let facilities = vec![
            Point::xy(3.0, 4.0),
            Point::xy(4.0, 3.0),
            Point::xy(-3.0, 4.0),
            Point::xy(0.0, 5.0),
            Point::xy(90.0, 90.0),
        ];
        let backends = [
            Oracle::Dense(DistanceMatrix::between(
                &clients,
                &facilities,
                DistanceKind::Euclidean,
            )),
            Oracle::Implicit(ImplicitMetric::between(
                clients.clone(),
                facilities.clone(),
                DistanceKind::Euclidean,
            )),
            Oracle::Spatial(SpatialOracle::between(
                clients,
                facilities,
                DistanceKind::Euclidean,
            )),
        ];
        for o in &backends {
            // Set order must not matter: {3, 1} ties at 5.0 → index 1 wins.
            assert_eq!(
                o.nearest_in_set(0, &[3, 1]),
                Some((1, 5.0)),
                "{:?}",
                o.backend()
            );
            assert_eq!(
                o.nearest_in_set(0, &[1, 3]),
                Some((1, 5.0)),
                "{:?}",
                o.backend()
            );
            // Full-row minimum: all of 0..4 tie at 5.0 → index 0 wins.
            assert_eq!(o.row_min(1), Some((0, 5.0)), "{:?}", o.backend());
            // Batched form agrees positionally with the per-row query.
            assert_eq!(
                o.nearest_in_set_all(&[4, 2, 3]),
                vec![Some((2, 5.0)), Some((2, 5.0))],
                "{:?}",
                o.backend()
            );
        }
    }

    #[test]
    fn cols_within_contract_holds_per_backend() {
        // The documented contract: strictly ascending indices, no
        // duplicates, inclusive radius — on every backend. The CSR
        // threshold-graph builder consumes these lists verbatim.
        let (dense, implicit, spatial) = triple();
        for oracle in [&dense, &implicit, &spatial] {
            let max = oracle.max_entry();
            for row in 0..oracle.rows() {
                for radius in [0.0, max * 0.3, max * 0.7, max] {
                    let cols = oracle.cols_within(row, radius);
                    assert!(
                        cols.windows(2).all(|w| w[0] < w[1]),
                        "{:?} row {row} radius {radius}: not strictly ascending: {cols:?}",
                        oracle.backend()
                    );
                    // Membership is exactly the inclusive comparison on the
                    // oracle's own distance arithmetic.
                    for c in 0..oracle.cols() {
                        assert_eq!(
                            cols.binary_search(&c).is_ok(),
                            oracle.dist(row, c) <= radius,
                            "{:?} row {row} col {c} radius {radius}",
                            oracle.backend()
                        );
                    }
                }
                // The inclusive boundary: a radius equal to an exact entry
                // distance must include that column.
                let boundary = oracle.dist(row, 0);
                assert!(
                    oracle.cols_within(row, boundary).contains(&0),
                    "{:?} row {row}: boundary radius excluded its own column",
                    oracle.backend()
                );
            }
        }
    }

    #[test]
    fn spatial_backend_agrees_with_dense_and_implicit_on_every_query() {
        let (dense, implicit, spatial) = triple();
        assert_eq!(spatial.rows(), dense.rows());
        assert_eq!(spatial.cols(), dense.cols());
        assert_eq!(spatial.backend(), Backend::Spatial);
        assert_eq!(spatial.max_entry(), dense.max_entry());
        assert_eq!(spatial.min_positive_entry(), dense.min_positive_entry());
        assert_eq!(
            spatial.sorted_distinct_values(),
            dense.sorted_distinct_values()
        );
        let radius = spatial.max_entry() * 0.4;
        for r in 0..dense.rows() {
            assert_eq!(spatial.row_to_vec(r), dense.row_to_vec(r));
            assert_eq!(spatial.row_min(r), dense.row_min(r), "row {r}");
            assert_eq!(
                spatial.nearest_in_set(r, &[4, 1, 2]),
                dense.nearest_in_set(r, &[4, 1, 2])
            );
            assert_eq!(
                spatial.cols_within(r, radius),
                dense.cols_within(r, radius),
                "row {r}"
            );
        }
        for c in 0..dense.cols() {
            assert_eq!(
                spatial.rows_within(c, radius),
                implicit.rows_within(c, radius),
                "col {c}"
            );
        }
        for set in [vec![0usize], vec![2, 0, 4], vec![1, 2, 3, 4, 0]] {
            assert_eq!(
                spatial.nearest_in_set_all(&set),
                dense.nearest_in_set_all(&set),
                "set {set:?}"
            );
        }
        assert_eq!(spatial.nearest_in_set_all(&[]), vec![None; spatial.rows()]);
    }

    #[test]
    fn spatial_symmetric_shares_one_index() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::xy(i as f64, (i % 5) as f64))
            .collect();
        let sym = SpatialOracle::symmetric(pts.clone(), DistanceKind::Euclidean);
        assert!(Arc::ptr_eq(&sym.row_index, &sym.col_index));
        let split = SpatialOracle::between(pts.clone(), pts, DistanceKind::Euclidean);
        assert!(!Arc::ptr_eq(&split.row_index, &split.col_index));
        // Shared sides: points and index each counted once.
        assert!(sym.memory_bytes() < split.memory_bytes());
        // Both answer identically.
        for row in [0usize, 7, 39] {
            assert_eq!(
                DistanceOracle::row_min(&sym, row),
                DistanceOracle::row_min(&split, row)
            );
        }
    }

    #[test]
    fn spatial_memory_includes_index_but_stays_point_sized() {
        let (dense, implicit, spatial) = triple();
        assert!(spatial.memory_bytes() > implicit.memory_bytes());
        // Index overhead is O(points), far under the dense matrix for any
        // instance where the matrix dominates.
        assert!(spatial.memory_bytes() < dense.memory_bytes() + implicit.memory_bytes() * 8);
    }
}
