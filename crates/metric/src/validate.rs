//! Metric-axiom validation.
//!
//! Every approximation guarantee in the paper relies on the distances forming a metric
//! (symmetry and the triangle inequality; Section 2). These checks are used by the
//! generator tests, property tests, and optionally by user-facing constructors to fail
//! fast on malformed inputs.

use crate::instance::{ClusterInstance, FlInstance};

/// A violation of the metric axioms.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricViolation {
    /// A distance entry was negative (index pair and value).
    Negative {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A pair of symmetric entries differ by more than the tolerance.
    Asymmetric {
        /// First node index.
        a: usize,
        /// Second node index.
        b: usize,
        /// `d(a, b)`.
        forward: f64,
        /// `d(b, a)`.
        backward: f64,
    },
    /// A triangle-inequality violation `d(a, c) > d(a, b) + d(b, c) + tol`.
    Triangle {
        /// Endpoint `a`.
        a: usize,
        /// Midpoint `b`.
        b: usize,
        /// Endpoint `c`.
        c: usize,
        /// Amount by which the inequality is violated.
        excess: f64,
    },
    /// A diagonal entry of a clustering instance was non-zero.
    NonZeroDiagonal {
        /// The node index.
        node: usize,
        /// The diagonal value.
        value: f64,
    },
}

/// Checks that a clustering instance's distance matrix is a metric: non-negative,
/// zero diagonal, symmetric, and satisfying the triangle inequality (all up to `tol`).
///
/// Runs in `O(n^3)` time — intended for tests and small validation passes, not hot
/// paths.
pub fn check_cluster_metric(inst: &ClusterInstance, tol: f64) -> Result<(), MetricViolation> {
    let n = inst.n();
    for a in 0..n {
        let daa = inst.dist(a, a);
        if daa.abs() > tol {
            return Err(MetricViolation::NonZeroDiagonal {
                node: a,
                value: daa,
            });
        }
        for b in 0..n {
            let d = inst.dist(a, b);
            if d < -tol {
                return Err(MetricViolation::Negative {
                    row: a,
                    col: b,
                    value: d,
                });
            }
            let back = inst.dist(b, a);
            if (d - back).abs() > tol {
                return Err(MetricViolation::Asymmetric {
                    a,
                    b,
                    forward: d,
                    backward: back,
                });
            }
        }
    }
    for a in 0..n {
        for b in 0..n {
            for c in 0..n {
                let excess = inst.dist(a, c) - inst.dist(a, b) - inst.dist(b, c);
                if excess > tol {
                    return Err(MetricViolation::Triangle { a, b, c, excess });
                }
            }
        }
    }
    Ok(())
}

/// Checks that a facility-location instance is consistent with *some* underlying metric
/// by verifying the bipartite triangle inequality
/// `d(j, i) <= d(j, i') + d(j', i') + d(j', i)` for all clients `j, j'` and facilities
/// `i, i'` (this is the inequality every analysis in the paper actually uses), plus
/// non-negativity.
///
/// Runs in `O(nc^2 * nf^2)` time — tests only.
pub fn check_fl_metric(inst: &FlInstance, tol: f64) -> Result<(), MetricViolation> {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    for j in 0..nc {
        for i in 0..nf {
            let d = inst.dist(j, i);
            if d < -tol {
                return Err(MetricViolation::Negative {
                    row: j,
                    col: i,
                    value: d,
                });
            }
        }
    }
    for j in 0..nc {
        for jp in 0..nc {
            for i in 0..nf {
                for ip in 0..nf {
                    let excess =
                        inst.dist(j, i) - inst.dist(j, ip) - inst.dist(jp, ip) - inst.dist(jp, i);
                    if excess > tol {
                        return Err(MetricViolation::Triangle {
                            a: j,
                            b: jp,
                            c: i,
                            excess,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distmat::DistanceMatrix;
    use crate::gen::{self, GenParams};
    use crate::point::Point;

    #[test]
    fn euclidean_cluster_instance_is_metric() {
        let inst = gen::clustering(GenParams::uniform_square(15, 15).with_seed(2));
        assert!(check_cluster_metric(&inst, 1e-7).is_ok());
    }

    #[test]
    fn euclidean_fl_instance_is_metric() {
        let inst = gen::facility_location(GenParams::gaussian_clusters(10, 6, 3).with_seed(2));
        assert!(check_fl_metric(&inst, 1e-7).is_ok());
    }

    #[test]
    fn asymmetric_matrix_is_rejected() {
        let m = DistanceMatrix::from_rows(2, 2, vec![0.0, 1.0, 2.0, 0.0]);
        let inst = ClusterInstance::new(m);
        match check_cluster_metric(&inst, 1e-9) {
            Err(MetricViolation::Asymmetric { .. }) => {}
            other => panic!("expected asymmetry, got {other:?}"),
        }
    }

    #[test]
    fn triangle_violation_is_detected() {
        // d(0,2)=10 but d(0,1)+d(1,2)=2: violates the triangle inequality.
        let m =
            DistanceMatrix::from_rows(3, 3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0]);
        let inst = ClusterInstance::new(m);
        match check_cluster_metric(&inst, 1e-9) {
            Err(MetricViolation::Triangle { .. }) => {}
            other => panic!("expected triangle violation, got {other:?}"),
        }
    }

    #[test]
    fn nonzero_diagonal_is_detected() {
        let m = DistanceMatrix::from_rows(2, 2, vec![0.5, 1.0, 1.0, 0.0]);
        let inst = ClusterInstance::new(m);
        match check_cluster_metric(&inst, 1e-9) {
            Err(MetricViolation::NonZeroDiagonal { node: 0, .. }) => {}
            other => panic!("expected non-zero diagonal, got {other:?}"),
        }
    }

    #[test]
    fn fl_bipartite_triangle_violation_is_detected() {
        // Clients {0,1}, facilities {0,1}.
        // d(0,0)=100, but d(0,1)=1, d(1,1)=1, d(1,0)=1 → 100 > 3.
        let m = DistanceMatrix::from_rows(2, 2, vec![100.0, 1.0, 1.0, 1.0]);
        let inst = FlInstance::new(vec![0.0, 0.0], m);
        match check_fl_metric(&inst, 1e-9) {
            Err(MetricViolation::Triangle { .. }) => {}
            other => panic!("expected triangle violation, got {other:?}"),
        }
    }

    #[test]
    fn squared_euclidean_is_not_a_metric() {
        // Three collinear points 0, 1, 2 under squared distance: d(0,2)=4 > 1+1.
        let pts = vec![Point::scalar(0.0), Point::scalar(1.0), Point::scalar(2.0)];
        let m = DistanceMatrix::pairwise(&pts, crate::point::DistanceKind::SquaredEuclidean);
        let inst = ClusterInstance::new(m);
        assert!(check_cluster_metric(&inst, 1e-9).is_err());
    }
}
