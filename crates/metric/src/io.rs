//! Plain-text serialisation of instances.
//!
//! The format follows the spirit of the classical OR-Library "cap" facility-location
//! format (counts on the first line, then facility costs, then the distance matrix row
//! by row), so synthetic instances produced by this crate can be saved, diffed, and
//! reloaded by the benchmark harness without any binary dependencies.
//!
//! ```text
//! # parfaclo facility-location instance
//! <num_facilities> <num_clients>
//! <f_0> <f_1> ... <f_{nf-1}>
//! <d(0,0)> <d(0,1)> ... <d(0,nf-1)>
//! ...
//! <d(nc-1,0)> ... <d(nc-1,nf-1)>
//! ```

use crate::distmat::DistanceMatrix;
use crate::instance::{ClusterInstance, FlInstance};
use std::fmt::Write as _;
use std::str::FromStr;

/// Errors produced while parsing an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line was missing or malformed.
    BadHeader(String),
    /// A numeric token could not be parsed.
    BadNumber(String),
    /// The file ended before all expected values were read.
    UnexpectedEof,
    /// Too many values were present.
    TrailingData,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header line: {s:?}"),
            ParseError::BadNumber(s) => write!(f, "bad numeric token: {s:?}"),
            ParseError::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseError::TrailingData => write!(f, "trailing data after matrix"),
        }
    }
}

impl std::error::Error for ParseError {}

fn tokens(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .flat_map(|l| l.split_whitespace())
}

fn parse_next<T: FromStr>(
    iter: &mut impl Iterator<Item = impl AsRef<str>>,
) -> Result<T, ParseError> {
    let tok = iter.next().ok_or(ParseError::UnexpectedEof)?;
    tok.as_ref()
        .parse::<T>()
        .map_err(|_| ParseError::BadNumber(tok.as_ref().to_string()))
}

/// Serialises a facility-location instance to the plain-text format.
pub fn write_fl_instance(inst: &FlInstance) -> String {
    let nf = inst.num_facilities();
    let nc = inst.num_clients();
    let mut out = String::new();
    out.push_str("# parfaclo facility-location instance\n");
    let _ = writeln!(out, "{nf} {nc}");
    let costs: Vec<String> = inst
        .facility_costs()
        .iter()
        .map(|c| format!("{c}"))
        .collect();
    let _ = writeln!(out, "{}", costs.join(" "));
    for j in 0..nc {
        let row: Vec<String> = inst.client_row(j).iter().map(|d| format!("{d}")).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Parses a facility-location instance from the plain-text format.
pub fn read_fl_instance(text: &str) -> Result<FlInstance, ParseError> {
    let mut it = tokens(text);
    let nf: usize = parse_next(&mut it)?;
    let nc: usize = parse_next(&mut it)?;
    let mut costs = Vec::with_capacity(nf);
    for _ in 0..nf {
        costs.push(parse_next::<f64>(&mut it)?);
    }
    let mut data = Vec::with_capacity(nc * nf);
    for _ in 0..nc * nf {
        data.push(parse_next::<f64>(&mut it)?);
    }
    if it.next().is_some() {
        return Err(ParseError::TrailingData);
    }
    Ok(FlInstance::new(
        costs,
        DistanceMatrix::from_rows(nc, nf, data),
    ))
}

/// Serialises a clustering instance (symmetric matrix) to the plain-text format.
pub fn write_cluster_instance(inst: &ClusterInstance) -> String {
    let n = inst.n();
    let mut out = String::new();
    out.push_str("# parfaclo clustering instance\n");
    let _ = writeln!(out, "{n}");
    for a in 0..n {
        let row: Vec<String> = (0..n).map(|b| format!("{}", inst.dist(a, b))).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Parses a clustering instance from the plain-text format.
pub fn read_cluster_instance(text: &str) -> Result<ClusterInstance, ParseError> {
    let mut it = tokens(text);
    let n: usize = parse_next(&mut it)?;
    let mut data = Vec::with_capacity(n * n);
    for _ in 0..n * n {
        data.push(parse_next::<f64>(&mut it)?);
    }
    if it.next().is_some() {
        return Err(ParseError::TrailingData);
    }
    Ok(ClusterInstance::new(DistanceMatrix::from_rows(n, n, data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, GenParams};

    #[test]
    fn fl_round_trip() {
        let inst = gen::facility_location(GenParams::uniform_square(7, 4).with_seed(5));
        let text = write_fl_instance(&inst);
        let back = read_fl_instance(&text).expect("parse");
        assert_eq!(back.num_clients(), 7);
        assert_eq!(back.num_facilities(), 4);
        for i in 0..4 {
            assert!((back.facility_cost(i) - inst.facility_cost(i)).abs() < 1e-12);
        }
        for j in 0..7 {
            for i in 0..4 {
                assert!((back.dist(j, i) - inst.dist(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cluster_round_trip() {
        let inst = gen::clustering(GenParams::line(5, 5));
        let text = write_cluster_instance(&inst);
        let back = read_cluster_instance(&text).expect("parse");
        assert_eq!(back.n(), 5);
        for a in 0..5 {
            for b in 0..5 {
                assert!((back.dist(a, b) - inst.dist(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn comments_are_ignored() {
        let text = "# hello\n2 1\n# costs\n3.0 4.0\n# row\n1.0 2.0\n";
        let inst = read_fl_instance(text).expect("parse");
        assert_eq!(inst.num_facilities(), 2);
        assert_eq!(inst.num_clients(), 1);
        assert_eq!(inst.facility_cost(1), 4.0);
        assert_eq!(inst.dist(0, 1), 2.0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            read_fl_instance(""),
            Err(ParseError::UnexpectedEof)
        ));
        assert!(matches!(
            read_fl_instance("2 1\nfoo 4.0\n1.0 2.0"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(
            read_fl_instance("1 1\n1.0\n1.0 99.0"),
            Err(ParseError::TrailingData)
        ));
    }
}
