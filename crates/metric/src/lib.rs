//! # parfaclo-metric
//!
//! Metric-space substrate for the `parfaclo` workspace, the Rust reproduction of
//! *Blelloch & Tangwongsan, "Parallel Approximation Algorithms for Facility-Location
//! Problems", SPAA 2010*.
//!
//! The paper (Section 2) works over a metric space `(X, d)` containing a facility set `F`
//! and a client set `C`; every algorithm in the paper consumes either
//!
//! * a **facility-location instance**: facility opening costs `f_i` plus the
//!   `|C| x |F|` client-to-facility distances ([`FlInstance`]), or
//! * a **clustering instance**: a symmetric `n x n` distance structure over a node set
//!   in which every node is simultaneously a client and a potential center
//!   ([`ClusterInstance`]).
//!
//! Distances are served through the [`oracle::DistanceOracle`] seam with three
//! interchangeable backends: the paper's dense matrix ([`DistanceMatrix`], `O(|C|·|F|)`
//! memory), an implicit geometric backend ([`oracle::ImplicitMetric`], distances
//! computed on demand from stored points in `O(|C| + |F|)` memory — the
//! production-scale path for 100k–1M clients), and an index-accelerated spatial
//! backend ([`oracle::SpatialOracle`], the implicit storage plus deterministic
//! exact kd-tree/grid indexes serving nearest/range queries sublinearly — the
//! path to 10M clients). All produce bit-identical distances for the same point
//! set, so solver output is byte-identical under any backend.
//!
//! This crate provides those instance types, the geometric [`Point`] representation used
//! to build them, a suite of synthetic [`gen`]erators standing in for the datasets the
//! paper does not provide (each behind one backend-parameterized builder,
//! [`gen::build_facility_location`] / [`gen::build_clustering`]), deterministic
//! ε-grid [`coreset`]s for solving clustering at 10M-point scale, metric-axiom
//! [`validate`]-ion, simple text [`io`], and the elementary [`lower_bounds`] from
//! Equation (2) of the paper that the experiment harness uses to certify approximation
//! ratios.
//!
//! ## Quick example
//!
//! ```
//! use parfaclo_metric::gen::{InstanceGenerator, GenParams, FacilityCostModel};
//!
//! let params = GenParams::uniform_square(64, 64).with_seed(7);
//! let inst = InstanceGenerator::new(params).facility_location();
//! assert_eq!(inst.num_clients(), 64);
//! assert_eq!(inst.num_facilities(), 64);
//! // distances obey the triangle inequality (through the shared underlying point set)
//! assert!(parfaclo_metric::validate::check_fl_metric(&inst, 1e-9).is_ok());
//! # let _ = FacilityCostModel::Uniform(1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coreset;
pub mod distmat;
pub mod gen;
pub mod instance;
pub mod io;
pub mod lower_bounds;
pub mod oracle;
pub mod point;
pub mod validate;

pub use coreset::{build_coreset, coreset_instance, BuildError, Coreset, GridCoreset};
pub use distmat::{DistanceMatrix, SizeOverflowError};
pub use instance::{ClusterInstance, FlInstance};
pub use oracle::{Backend, DistanceOracle, ImplicitMetric, Oracle, SpatialOracle};
pub use point::Point;

/// Index of a facility within an [`FlInstance`] (column of the distance matrix).
pub type FacilityId = usize;

/// Index of a client within an [`FlInstance`] (row of the distance matrix).
pub type ClientId = usize;

/// Index of a node within a [`ClusterInstance`].
pub type NodeId = usize;

/// Numeric tolerance used throughout the workspace when comparing distances and costs.
///
/// All costs are non-negative `f64` values derived from Euclidean distances or explicit
/// matrices; `EPSILON_COST` absorbs accumulated floating-point error in feasibility and
/// invariant checks.
pub const EPSILON_COST: f64 = 1e-7;

/// Convenience: relative-error comparison `|a - b| <= tol * max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}

/// Convenience: `a <= b` up to relative tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b + tol * 1.0_f64.max(a.abs()).max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
    }

    #[test]
    fn approx_le_basic() {
        assert!(approx_le(1.0, 1.0, 1e-9));
        assert!(approx_le(1.0, 2.0, 1e-9));
        assert!(approx_le(1.0 + 1e-12, 1.0, 1e-9));
        assert!(!approx_le(1.1, 1.0, 1e-9));
    }
}
