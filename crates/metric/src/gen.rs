//! Synthetic instance generators.
//!
//! The paper evaluates nothing empirically and ships no datasets, so the benchmark
//! harness needs synthetic workloads. The generators here cover the regimes the paper's
//! analyses care about:
//!
//! * **Uniform random** points in a square — the "typical" unstructured workload.
//! * **Gaussian clusters** — well-separated cluster structure, the easy case for all
//!   algorithms and the motivating case for k-median/k-means.
//! * **Grid** — highly regular instance with massive cost ties, which stresses the
//!   `(1 + ε)`-slack selection steps (many elements fall inside the slack window at
//!   once).
//! * **Line** — a 1-dimensional metric; the adversarial shape for greedy/local-search
//!   style algorithms because clusters are ambiguous at every scale.
//! * **Planted clusters** — `k` well-separated blobs of equal size, for which tight
//!   lower bounds on the optimal k-center/k-median cost are easy to compute.
//!
//! Facility opening costs come from a [`FacilityCostModel`], and everything is seeded so
//! experiments are reproducible.

use crate::coreset::BuildError;
use crate::distmat::{DistanceMatrix, SizeOverflowError};
use crate::instance::{ClusterInstance, FlInstance};
use crate::oracle::{Backend, DistanceOracle, ImplicitMetric, Oracle, SpatialOracle};
use crate::point::{DistanceKind, Point};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// How client / facility / node positions are laid out in space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialModel {
    /// Points drawn uniformly at random from an axis-aligned square `[0, side]^2`.
    UniformSquare {
        /// Side length of the square.
        side: f64,
    },
    /// `clusters` Gaussian blobs with centres drawn uniformly from `[0, side]^2` and
    /// per-coordinate standard deviation `std`.
    GaussianClusters {
        /// Number of blobs.
        clusters: usize,
        /// Standard deviation of each blob.
        std: f64,
        /// Side length of the square containing the blob centres.
        side: f64,
    },
    /// Points on the integer grid `{0, .., w-1} x {0, .., h-1}`, scaled by `spacing`.
    /// Extra points (beyond `w*h`) wrap around with a small deterministic jitter so the
    /// generator still produces the requested count.
    Grid {
        /// Grid width (number of columns).
        width: usize,
        /// Distance between adjacent grid points.
        spacing: f64,
    },
    /// Points on a line with unit spacing — a 1-dimensional metric.
    Line {
        /// Distance between consecutive points.
        spacing: f64,
    },
    /// `clusters` tightly packed blobs of radius `radius` whose centres are at mutual
    /// distance at least `separation`; used when a known cluster structure (and hence an
    /// easy lower bound) is wanted.
    PlantedClusters {
        /// Number of blobs (the intended `k`).
        clusters: usize,
        /// Maximum distance of a point from its blob centre.
        radius: f64,
        /// Minimum distance between blob centres.
        separation: f64,
    },
    /// Clusters whose sizes decay as a power law: cluster `h` holds
    /// `max(1, floor(sqrt(count) / (h+1)^exponent))` points inside a disk of
    /// radius `radius`, centres laid out on a coarse grid at pitch
    /// `separation`. With a threshold between `2·radius` and
    /// `separation - 2·radius` the threshold graph is a disjoint union of
    /// cliques whose sizes follow the power law — a handful of heavy hubs, a
    /// long tail of singletons, and (for `exponent > 1`) only `O(count)`
    /// edges in total, no matter how large `count` grows. This is the sparse
    /// regime a dense `n²` bit matrix cannot represent at scale.
    PowerLawClusters {
        /// Decay exponent of the cluster sizes (`> 1` keeps total edges
        /// linear in the point count).
        exponent: f64,
        /// Maximum distance of a point from its cluster centre.
        radius: f64,
        /// Pitch of the grid the cluster centres sit on.
        separation: f64,
    },
    /// A road-network-like metric: points sit on the lines of a `g × g`
    /// grid of "roads" at pitch `block` (with `g ≈ sqrt(count)`), uniformly
    /// positioned along a random road with a small perpendicular `jitter`.
    /// Linear density along a road is about `1/(2·block)` per unit length,
    /// so with a threshold `t` the threshold graph has expected degree
    /// `≈ t/block` — a bounded-degree, locally linear metric like a road
    /// map, again with `O(count)` edges at any fixed threshold.
    RoadNetwork {
        /// Distance between adjacent parallel roads.
        block: f64,
        /// Maximum perpendicular deviation of a point from its road.
        jitter: f64,
    },
}

/// How facility opening costs are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FacilityCostModel {
    /// Every facility costs the same fixed amount.
    Uniform(f64),
    /// Costs drawn uniformly at random from `[lo, hi]`.
    UniformRange {
        /// Lower bound of the cost range.
        lo: f64,
        /// Upper bound of the cost range.
        hi: f64,
    },
    /// Every facility cost is `factor` times the spatial extent (maximum pairwise
    /// distance scale) of the instance; keeps facility and connection costs comparable
    /// regardless of the spatial model.
    ProportionalToSpread(f64),
    /// All facilities are free; the optimum then opens everything and the problem
    /// degenerates to nearest-facility assignment (useful as an edge case in tests).
    Zero,
}

/// Full parameter set for the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Number of clients (or nodes, for clustering instances).
    pub num_clients: usize,
    /// Number of facilities (ignored by clustering instances).
    pub num_facilities: usize,
    /// Spatial layout of the points.
    pub spatial: SpatialModel,
    /// Facility opening-cost model.
    pub cost_model: FacilityCostModel,
    /// Distance function used to materialise matrices.
    pub distance: DistanceKind,
    /// RNG seed; the same parameters and seed always produce the same instance.
    pub seed: u64,
}

impl GenParams {
    /// Uniform-square layout with proportional facility costs — the workhorse workload.
    pub fn uniform_square(num_clients: usize, num_facilities: usize) -> Self {
        GenParams {
            num_clients,
            num_facilities,
            spatial: SpatialModel::UniformSquare { side: 100.0 },
            cost_model: FacilityCostModel::ProportionalToSpread(0.25),
            distance: DistanceKind::Euclidean,
            seed: 0x0FAC_110C,
        }
    }

    /// Gaussian-cluster layout with `clusters` blobs.
    pub fn gaussian_clusters(num_clients: usize, num_facilities: usize, clusters: usize) -> Self {
        GenParams {
            spatial: SpatialModel::GaussianClusters {
                clusters,
                std: 2.0,
                side: 100.0,
            },
            ..GenParams::uniform_square(num_clients, num_facilities)
        }
    }

    /// Regular grid layout (many distance ties).
    pub fn grid(num_clients: usize, num_facilities: usize) -> Self {
        let width = (num_clients.max(num_facilities) as f64).sqrt().ceil() as usize;
        GenParams {
            spatial: SpatialModel::Grid {
                width: width.max(2),
                spacing: 1.0,
            },
            ..GenParams::uniform_square(num_clients, num_facilities)
        }
    }

    /// Line-metric layout (1-dimensional adversarial instance).
    pub fn line(num_clients: usize, num_facilities: usize) -> Self {
        GenParams {
            spatial: SpatialModel::Line { spacing: 1.0 },
            ..GenParams::uniform_square(num_clients, num_facilities)
        }
    }

    /// Planted-cluster layout with `clusters` well-separated blobs.
    pub fn planted(num_clients: usize, num_facilities: usize, clusters: usize) -> Self {
        GenParams {
            spatial: SpatialModel::PlantedClusters {
                clusters,
                radius: 1.0,
                separation: 50.0,
            },
            ..GenParams::uniform_square(num_clients, num_facilities)
        }
    }

    /// Power-law-cluster layout: clique sizes decay as a power law, total
    /// threshold-graph edges stay `O(n)` (see
    /// [`SpatialModel::PowerLawClusters`]). Thresholds in `(2, 48)` keep
    /// clusters disconnected from each other.
    pub fn power_law(num_clients: usize, num_facilities: usize) -> Self {
        GenParams {
            spatial: SpatialModel::PowerLawClusters {
                exponent: 1.5,
                radius: 1.0,
                separation: 50.0,
            },
            ..GenParams::uniform_square(num_clients, num_facilities)
        }
    }

    /// Road-network layout: bounded-degree locally linear metric (see
    /// [`SpatialModel::RoadNetwork`]). A threshold `t` gives expected
    /// threshold-graph degree `≈ t` (block pitch 1).
    pub fn road(num_clients: usize, num_facilities: usize) -> Self {
        GenParams {
            spatial: SpatialModel::RoadNetwork {
                block: 1.0,
                jitter: 0.05,
            },
            ..GenParams::uniform_square(num_clients, num_facilities)
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the facility cost model.
    pub fn with_cost_model(mut self, cost_model: FacilityCostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Replaces the distance kind.
    pub fn with_distance(mut self, distance: DistanceKind) -> Self {
        self.distance = distance;
        self
    }
}

/// A named generator configuration, used by the experiment harness to sweep over a
/// standard suite of workloads.
#[derive(Debug, Clone)]
pub struct NamedWorkload {
    /// Short human-readable name (appears in experiment tables).
    pub name: &'static str,
    /// The generator parameters.
    pub params: GenParams,
}

/// The standard workload suite used by the experiments in `EXPERIMENTS.md`.
pub fn standard_suite(num_clients: usize, num_facilities: usize, seed: u64) -> Vec<NamedWorkload> {
    vec![
        NamedWorkload {
            name: "uniform",
            params: GenParams::uniform_square(num_clients, num_facilities).with_seed(seed),
        },
        NamedWorkload {
            name: "clustered",
            params: GenParams::gaussian_clusters(num_clients, num_facilities, 8).with_seed(seed),
        },
        NamedWorkload {
            name: "grid",
            params: GenParams::grid(num_clients, num_facilities).with_seed(seed),
        },
        NamedWorkload {
            name: "line",
            params: GenParams::line(num_clients, num_facilities).with_seed(seed),
        },
        NamedWorkload {
            name: "planted",
            params: GenParams::planted(num_clients, num_facilities, 8).with_seed(seed),
        },
    ]
}

/// Deterministic, seedable instance generator.
pub struct InstanceGenerator {
    params: GenParams,
    rng: ChaCha8Rng,
}

impl InstanceGenerator {
    /// Creates a generator for the given parameters.
    pub fn new(params: GenParams) -> Self {
        InstanceGenerator {
            rng: ChaCha8Rng::seed_from_u64(params.seed),
            params,
        }
    }

    /// The parameters this generator was constructed with.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    fn sample_points(&mut self, count: usize) -> Vec<Point> {
        match self.params.spatial {
            SpatialModel::UniformSquare { side } => (0..count)
                .map(|_| Point::xy(self.rng.gen::<f64>() * side, self.rng.gen::<f64>() * side))
                .collect(),
            SpatialModel::GaussianClusters {
                clusters,
                std,
                side,
            } => {
                let clusters = clusters.max(1);
                let centers: Vec<(f64, f64)> = (0..clusters)
                    .map(|_| (self.rng.gen::<f64>() * side, self.rng.gen::<f64>() * side))
                    .collect();
                (0..count)
                    .map(|idx| {
                        let (cx, cy) = centers[idx % clusters];
                        // Box–Muller transform for Gaussian offsets.
                        let (u1, u2) = (
                            self.rng.gen::<f64>().max(f64::MIN_POSITIVE),
                            self.rng.gen::<f64>(),
                        );
                        let r = (-2.0 * u1.ln()).sqrt();
                        let (dx, dy) = (
                            r * (2.0 * std::f64::consts::PI * u2).cos(),
                            r * (2.0 * std::f64::consts::PI * u2).sin(),
                        );
                        Point::xy(cx + std * dx, cy + std * dy)
                    })
                    .collect()
            }
            SpatialModel::Grid { width, spacing } => (0..count)
                .map(|idx| {
                    let x = (idx % width) as f64 * spacing;
                    let y = (idx / width) as f64 * spacing;
                    Point::xy(x, y)
                })
                .collect(),
            SpatialModel::Line { spacing } => (0..count)
                .map(|idx| Point::scalar(idx as f64 * spacing))
                .collect(),
            SpatialModel::PlantedClusters {
                clusters,
                radius,
                separation,
            } => {
                let clusters = clusters.max(1);
                // Place blob centres on a coarse line so mutual distances are exactly
                // multiples of `separation`.
                let centers: Vec<(f64, f64)> = (0..clusters)
                    .map(|c| (c as f64 * separation, 0.0))
                    .collect();
                (0..count)
                    .map(|idx| {
                        let (cx, cy) = centers[idx % clusters];
                        let angle = self.rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                        let r = self.rng.gen::<f64>() * radius;
                        Point::xy(cx + r * angle.cos(), cy + r * angle.sin())
                    })
                    .collect()
            }
            SpatialModel::PowerLawClusters {
                exponent,
                radius,
                separation,
            } => {
                // Cluster `h` holds `max(1, floor(sqrt(count)/(h+1)^exponent))`
                // points; with exponent > 1 the big clusters hold O(sqrt(count))
                // points each, so the per-cluster cliques of the threshold graph
                // contribute O(count) edges in total. Centres sit on a coarse
                // grid at pitch `separation`, one cluster per cell.
                let base = (count as f64).sqrt().ceil().max(1.0);
                let grid_w = (base as usize).max(1);
                let mut pts = Vec::with_capacity(count);
                let mut cluster = 0usize;
                while pts.len() < count {
                    let size = (base / ((cluster + 1) as f64).powf(exponent)).floor() as usize;
                    let size = size.max(1).min(count - pts.len());
                    let cx = (cluster % grid_w) as f64 * separation;
                    let cy = (cluster / grid_w) as f64 * separation;
                    for _ in 0..size {
                        let angle = self.rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                        let r = self.rng.gen::<f64>() * radius;
                        pts.push(Point::xy(cx + r * angle.cos(), cy + r * angle.sin()));
                    }
                    cluster += 1;
                }
                pts
            }
            SpatialModel::RoadNetwork { block, jitter } => {
                // A g × g grid of roads, g ≈ sqrt(count): each point picks an
                // orientation and a road uniformly, a uniform position along
                // it, and a small perpendicular jitter. About count/(2g)
                // points share a road of length g·block, so linear density —
                // and with it threshold-graph degree — is independent of
                // count.
                let g = ((count as f64).sqrt().ceil() as usize).max(2);
                let extent = g as f64 * block;
                (0..count)
                    .map(|_| {
                        let vertical = self.rng.gen::<f64>() < 0.5;
                        let line = ((self.rng.gen::<f64>() * g as f64) as usize).min(g - 1);
                        let along = self.rng.gen::<f64>() * extent;
                        let perp = line as f64 * block + jitter * (self.rng.gen::<f64>() - 0.5);
                        if vertical {
                            Point::xy(perp, along)
                        } else {
                            Point::xy(along, perp)
                        }
                    })
                    .collect()
            }
        }
    }

    fn facility_costs(&mut self, count: usize, spread: f64) -> Vec<f64> {
        match self.params.cost_model {
            FacilityCostModel::Uniform(c) => vec![c; count],
            FacilityCostModel::UniformRange { lo, hi } => {
                assert!(lo <= hi && lo >= 0.0, "invalid facility cost range");
                (0..count).map(|_| self.rng.gen_range(lo..=hi)).collect()
            }
            FacilityCostModel::ProportionalToSpread(factor) => vec![factor * spread; count],
            FacilityCostModel::Zero => vec![0.0; count],
        }
    }

    /// Generates a dense-backend facility-location instance.
    ///
    /// # Panics
    /// Panics (with the [`SizeOverflowError`] message) if the dense
    /// `num_clients x num_facilities` matrix shape overflows; use
    /// [`InstanceGenerator::build_facility_location`] with a point-backed
    /// backend at such sizes.
    pub fn facility_location(&mut self) -> FlInstance {
        self.try_facility_location()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked dense generation: rejects overflowing matrix shapes with a typed
    /// error instead of a capacity abort — before sampling a single point.
    pub fn try_facility_location(&mut self) -> Result<FlInstance, SizeOverflowError> {
        crate::distmat::checked_matrix_len(self.params.num_clients, self.params.num_facilities)?;
        let clients = self.sample_points(self.params.num_clients);
        let facilities = self.sample_points(self.params.num_facilities);
        let dist = DistanceMatrix::try_between(&clients, &facilities, self.params.distance)?;
        let spread = dist.max_entry().max(1.0);
        let costs = self.facility_costs(self.params.num_facilities, spread);
        Ok(FlInstance::new(costs, dist).with_points(clients, facilities))
    }

    /// The backend-parameterized generator: produces the facility-location
    /// instance under the requested [`Backend`]. Every backend draws the
    /// same RNG stream, so points, spread and costs — and therefore every
    /// distance — are bit-identical across the three.
    ///
    /// The dense path reports overflowing matrix shapes as a typed
    /// [`BuildError`] **before sampling a single point**; the point-backed
    /// backends have no shape limit and stay `O(|C| + |F|)` in memory
    /// (spatial being the one that makes the 10M-point `xxlarge` preset
    /// practical).
    pub fn build_facility_location(&mut self, backend: Backend) -> Result<FlInstance, BuildError> {
        match backend {
            Backend::Dense => self.try_facility_location().map_err(BuildError::from),
            Backend::Implicit | Backend::Spatial => {
                let clients = self.sample_points(self.params.num_clients);
                let facilities = self.sample_points(self.params.num_facilities);
                let oracle = ImplicitMetric::between(clients, facilities, self.params.distance);
                let spread = oracle.max_entry().max(1.0);
                let costs = self.facility_costs(self.params.num_facilities, spread);
                let oracle = if backend == Backend::Implicit {
                    Oracle::Implicit(oracle)
                } else {
                    Oracle::Spatial(SpatialOracle::from_implicit(oracle))
                };
                Ok(FlInstance::with_oracle(costs, oracle))
            }
        }
    }

    /// Generates a dense-backend clustering instance over `num_clients` nodes (the
    /// `num_facilities` parameter is ignored: every node is a potential center).
    ///
    /// # Panics
    /// Panics (with the [`SizeOverflowError`] message) if the dense `n x n` shape
    /// overflows; use [`InstanceGenerator::build_clustering`] with a
    /// point-backed backend at such sizes.
    pub fn clustering(&mut self) -> ClusterInstance {
        self.try_clustering().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked dense generation: rejects overflowing matrix shapes with a typed
    /// error instead of a capacity abort — before sampling a single point.
    pub fn try_clustering(&mut self) -> Result<ClusterInstance, SizeOverflowError> {
        crate::distmat::checked_matrix_len(self.params.num_clients, self.params.num_clients)?;
        let points = self.sample_points(self.params.num_clients);
        let dist = DistanceMatrix::try_between(&points, &points, self.params.distance)?;
        Ok(ClusterInstance::new(dist).with_points(points))
    }

    /// The backend-parameterized generator for clustering instances: same
    /// points as [`InstanceGenerator::clustering`] for the same parameters
    /// and seed (same RNG stream, bit-identical distances) under any
    /// [`Backend`]. The point-backed backends store the points once
    /// (`O(n)` memory); the dense path reports overflowing `n x n` shapes
    /// as a typed [`BuildError`] before sampling.
    pub fn build_clustering(&mut self, backend: Backend) -> Result<ClusterInstance, BuildError> {
        match backend {
            Backend::Dense => self.try_clustering().map_err(BuildError::from),
            Backend::Implicit | Backend::Spatial => {
                let points = self.sample_points(self.params.num_clients);
                ClusterInstance::build(points, self.params.distance, backend)
            }
        }
    }
}

/// Convenience: generate a dense facility-location instance directly from parameters.
///
/// # Panics
/// Panics on overflowing dense shapes; use [`build_facility_location`] for
/// the checked, backend-parameterized path.
pub fn facility_location(params: GenParams) -> FlInstance {
    InstanceGenerator::new(params).facility_location()
}

/// Generate a facility-location instance under the given backend — the one
/// construction entry point for every backend. The dense path reports
/// overflowing shapes as a typed [`BuildError`]; the point-backed paths
/// have no shape limit.
pub fn build_facility_location(
    params: GenParams,
    backend: Backend,
) -> Result<FlInstance, BuildError> {
    InstanceGenerator::new(params).build_facility_location(backend)
}

/// Convenience: generate a dense clustering instance directly from parameters.
///
/// # Panics
/// Panics on overflowing dense shapes; use [`build_clustering`] for the
/// checked, backend-parameterized path.
pub fn clustering(params: GenParams) -> ClusterInstance {
    InstanceGenerator::new(params).clustering()
}

/// Generate a clustering instance under the given backend (see
/// [`build_facility_location`]).
pub fn build_clustering(
    params: GenParams,
    backend: Backend,
) -> Result<ClusterInstance, BuildError> {
    InstanceGenerator::new(params).build_clustering(backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn uniform_square_dimensions() {
        let inst = facility_location(GenParams::uniform_square(20, 10).with_seed(1));
        assert_eq!(inst.num_clients(), 20);
        assert_eq!(inst.num_facilities(), 10);
        assert_eq!(inst.m(), 200);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = facility_location(GenParams::uniform_square(16, 8).with_seed(42));
        let b = facility_location(GenParams::uniform_square(16, 8).with_seed(42));
        let c = facility_location(GenParams::uniform_square(16, 8).with_seed(43));
        assert_eq!(a.distances(), b.distances());
        assert_eq!(a.facility_costs(), b.facility_costs());
        assert_ne!(a.distances(), c.distances());
    }

    #[test]
    fn all_spatial_models_produce_valid_metrics() {
        for wl in standard_suite(24, 12, 5) {
            let inst = facility_location(wl.params);
            assert!(
                validate::check_fl_metric(&inst, 1e-6).is_ok(),
                "workload {} violated metric axioms",
                wl.name
            );
        }
    }

    #[test]
    fn clustering_instances_are_symmetric() {
        for wl in standard_suite(20, 20, 9) {
            let inst = clustering(wl.params);
            assert_eq!(inst.n(), 20);
            assert!(inst.distances().is_symmetric(1e-9), "workload {}", wl.name);
        }
    }

    #[test]
    fn cost_models() {
        let base = GenParams::uniform_square(8, 8).with_seed(3);
        let uniform = facility_location(base.with_cost_model(FacilityCostModel::Uniform(7.0)));
        assert!(uniform.facility_costs().iter().all(|&c| c == 7.0));

        let zero = facility_location(base.with_cost_model(FacilityCostModel::Zero));
        assert!(zero.facility_costs().iter().all(|&c| c == 0.0));

        let ranged = facility_location(
            base.with_cost_model(FacilityCostModel::UniformRange { lo: 1.0, hi: 2.0 }),
        );
        assert!(ranged
            .facility_costs()
            .iter()
            .all(|&c| (1.0..=2.0).contains(&c)));
    }

    #[test]
    fn planted_clusters_are_separated() {
        let inst = clustering(GenParams::planted(40, 40, 4).with_seed(11));
        // Any two points in the same blob are within 2*radius = 2.0; points in different
        // blobs are at least separation - 2*radius = 48 apart.
        let mut near = 0usize;
        let mut far = 0usize;
        for a in 0..inst.n() {
            for b in (a + 1)..inst.n() {
                let d = inst.dist(a, b);
                if d <= 2.0 + 1e-9 {
                    near += 1;
                } else if d >= 48.0 - 1e-9 {
                    far += 1;
                } else {
                    panic!("unexpected intermediate distance {d}");
                }
            }
        }
        assert!(near > 0 && far > 0);
    }

    #[test]
    fn grid_and_line_are_deterministic_layouts() {
        let g = facility_location(GenParams::grid(9, 9).with_seed(0));
        let g2 = facility_location(GenParams::grid(9, 9).with_seed(999));
        // Grid ignores randomness for positions; only cost model could differ but it is
        // proportional, so instances coincide.
        assert_eq!(g.distances(), g2.distances());

        let l = clustering(GenParams::line(5, 5));
        assert_eq!(l.dist(0, 4), 4.0);
        assert_eq!(l.dist(1, 3), 2.0);
    }

    #[test]
    fn implicit_generation_matches_dense_bit_for_bit() {
        for wl in standard_suite(18, 9, 4) {
            let dense = facility_location(wl.params);
            let implicit = build_facility_location(wl.params, Backend::Implicit).unwrap();
            assert_eq!(dense.backend(), Backend::Dense);
            assert_eq!(implicit.backend(), Backend::Implicit);
            assert_eq!(
                dense.facility_costs(),
                implicit.facility_costs(),
                "{}",
                wl.name
            );
            for j in 0..dense.num_clients() {
                for i in 0..dense.num_facilities() {
                    assert_eq!(
                        dense.dist(j, i).to_bits(),
                        implicit.dist(j, i).to_bits(),
                        "workload {} entry ({j},{i})",
                        wl.name
                    );
                }
            }
            let cd = clustering(wl.params);
            let ci = build_clustering(wl.params, Backend::Implicit).unwrap();
            for a in 0..cd.n() {
                for b in 0..cd.n() {
                    assert_eq!(cd.dist(a, b).to_bits(), ci.dist(a, b).to_bits());
                }
            }
        }
    }

    #[test]
    fn implicit_memory_is_point_sized() {
        // Implicit storage (Points plus the SoA copy the batch kernels
        // stream) is O(rows + cols); the dense matrix is O(rows * cols),
        // so the gap widens with instance size.
        let params = GenParams::uniform_square(128, 64).with_seed(2);
        let dense = facility_location(params);
        let implicit = build_facility_location(params, Backend::Implicit).unwrap();
        assert_eq!(dense.memory_bytes(), 128 * 64 * 8);
        assert!(
            implicit.memory_bytes() < dense.memory_bytes() / 4,
            "implicit {} vs dense {}",
            implicit.memory_bytes(),
            dense.memory_bytes()
        );
        assert!(implicit.client_points().is_some());
        assert!(implicit.facility_points().is_some());
    }

    #[test]
    fn backend_dispatching_constructors() {
        let params = GenParams::grid(10, 5).with_seed(0);
        let d = build_facility_location(params, Backend::Dense).unwrap();
        let i = build_facility_location(params, Backend::Implicit).unwrap();
        let s = build_facility_location(params, Backend::Spatial).unwrap();
        assert_eq!(d.dist(3, 2), i.dist(3, 2));
        assert_eq!(d.dist(3, 2), s.dist(3, 2));
        assert_eq!(s.backend(), Backend::Spatial);
        let cd = build_clustering(params, Backend::Dense).unwrap();
        let ci = build_clustering(params, Backend::Implicit).unwrap();
        let cs = build_clustering(params, Backend::Spatial).unwrap();
        assert_eq!(cd.dist(1, 4), ci.dist(1, 4));
        assert_eq!(cd.dist(1, 4), cs.dist(1, 4));
    }

    #[test]
    fn spatial_generation_matches_dense_bit_for_bit() {
        // Same RNG stream as the other constructors ⇒ identical points,
        // spread, costs and distances — on every workload shape.
        for wl in standard_suite(18, 9, 4) {
            let dense = facility_location(wl.params);
            let spatial = build_facility_location(wl.params, Backend::Spatial).unwrap();
            assert_eq!(spatial.backend(), Backend::Spatial, "{}", wl.name);
            assert_eq!(
                dense.facility_costs(),
                spatial.facility_costs(),
                "{}",
                wl.name
            );
            for j in 0..dense.num_clients() {
                for i in 0..dense.num_facilities() {
                    assert_eq!(
                        dense.dist(j, i).to_bits(),
                        spatial.dist(j, i).to_bits(),
                        "workload {} entry ({j},{i})",
                        wl.name
                    );
                }
            }
            let cd = clustering(wl.params);
            let cs = build_clustering(wl.params, Backend::Spatial).unwrap();
            for a in 0..cd.n() {
                for b in 0..cd.n() {
                    assert_eq!(cd.dist(a, b).to_bits(), cs.dist(a, b).to_bits());
                }
            }
        }
    }

    #[test]
    fn overflowing_dense_generation_is_a_typed_error() {
        // A shape whose rows * cols overflows usize must be rejected before any
        // allocation is attempted — and only on the dense path.
        let params = GenParams {
            num_clients: usize::MAX / 2,
            num_facilities: 4,
            spatial: SpatialModel::Line { spacing: 1.0 },
            cost_model: FacilityCostModel::Zero,
            distance: DistanceKind::Euclidean,
            seed: 0,
        };
        let err = build_facility_location(params, Backend::Dense).unwrap_err();
        assert!(
            err.to_string().contains("implicit backend"),
            "unexpected error: {err}"
        );
        // (The implicit path would accept the shape but sampling usize::MAX/2
        // points is itself absurd — not exercised here.)
    }

    #[test]
    fn power_law_threshold_graph_is_sparse_with_heavy_hubs() {
        let inst = build_clustering(
            GenParams::power_law(400, 400).with_seed(6),
            Backend::Implicit,
        )
        .unwrap();
        let n = inst.n();
        // With threshold 3 (> 2·radius, < separation − 2·radius) the edges
        // are exactly the intra-cluster cliques.
        let mut edges = 0usize;
        let mut degree = vec![0usize; n];
        for a in 0..n {
            for b in (a + 1)..n {
                if inst.dist(a, b) <= 3.0 {
                    edges += 1;
                    degree[a] += 1;
                    degree[b] += 1;
                }
            }
        }
        let max_degree = degree.iter().copied().max().unwrap();
        let singletons = degree.iter().filter(|&&d| d == 0).count();
        assert!(edges > 0);
        assert!(edges <= 4 * n, "edges {edges} not linear in n = {n}");
        // Power-law shape: one hub of ~sqrt(n) nodes and a long singleton tail.
        assert!(max_degree >= 10, "no heavy hub (max degree {max_degree})");
        assert!(singletons > n / 2, "tail missing ({singletons} singletons)");
    }

    #[test]
    fn road_network_threshold_graph_has_bounded_density() {
        let inst =
            build_clustering(GenParams::road(300, 300).with_seed(2), Backend::Implicit).unwrap();
        let n = inst.n();
        let mut edges = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                if inst.dist(a, b) <= 2.0 {
                    edges += 1;
                }
            }
        }
        assert!(edges > 0);
        // Linear density along roads is count-independent, so edges stay
        // O(n) — far below the ~n²/2 of a dense metric at median threshold.
        assert!(edges <= 8 * n, "edges {edges} not linear in n = {n}");
    }

    #[test]
    fn sparse_models_generate_across_backends_bit_for_bit() {
        for params in [
            GenParams::power_law(60, 60).with_seed(3),
            GenParams::road(60, 60).with_seed(3),
        ] {
            let dense = clustering(params);
            let implicit = build_clustering(params, Backend::Implicit).unwrap();
            let spatial = build_clustering(params, Backend::Spatial).unwrap();
            for a in 0..dense.n() {
                for b in 0..dense.n() {
                    assert_eq!(dense.dist(a, b).to_bits(), implicit.dist(a, b).to_bits());
                    assert_eq!(dense.dist(a, b).to_bits(), spatial.dist(a, b).to_bits());
                }
            }
        }
    }

    #[test]
    fn standard_suite_has_expected_workloads() {
        let suite = standard_suite(10, 10, 1);
        let names: Vec<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["uniform", "clustered", "grid", "line", "planted"]
        );
    }
}
