//! # parfaclo-bucket
//!
//! Deterministic bucket queues in the style of Julienne (Dhulipala, Blelloch
//! & Shun) and the SPAA'21 stepping-algorithm framework.
//!
//! The event-driven solvers — greedy's round loop, primal-dual's dual
//! ascent, k-center's radius search — all share one access pattern: "give me
//! every element whose value lies below a moving threshold". A comparison
//! sort answers it with `O(m log m)` up-front work even when only a prefix
//! is ever consumed; a rescan answers it with `O(rounds · n)`. A bucket
//! queue answers it with near-linear total work by hashing each element into
//! a bucket that is a **pure function of its value**, so the structure's
//! shape depends only on the data — never on thread count, timing, or
//! insertion interleaving across workers.
//!
//! ## Determinism contract
//!
//! Every consumer in the workspace relies on three properties, pinned here
//! and regression-tested in this crate:
//!
//! 1. **Value-pure bucket ids.** [`BucketMapping::bucket_of`] is a pure
//!    function of the value (and the mapping's fixed parameters). Two equal
//!    values land in the same bucket in every run, at every thread count,
//!    under every execution policy.
//! 2. **Monotone.** `a <= b` implies `bucket_of(a) <= bucket_of(b)` for
//!    non-negative finite inputs. This is what lets [`BucketQueue::extract_ready`]
//!    stop scanning at `bucket_of(threshold)` without missing a ready entry,
//!    and what makes concatenating per-bucket sorted runs reproduce a global
//!    sort.
//! 3. **Canonical intra-bucket order.** Entries within a bucket keep
//!    left-to-right insertion order. Callers that insert in a canonical
//!    order (ascending id, say) therefore extract in a canonical order.
//!
//! Bucket *boundaries* ([`BucketMapping::lower_bound`]) are exact for the
//! geometric mapping; for the linear mapping they are within rounding of the
//! ideal boundary, which is why the queue's readiness test always compares
//! **exact keys**, never boundaries — buckets only locate candidates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;

/// How values map to bucket ids.
///
/// Both variants are pure functions of the value and the mapping's own
/// parameters: no state, no thread-count dependence, no insertion-order
/// dependence. Both are monotone over the non-negative finite range the
/// solvers feed them (distances, prices, dual levels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BucketMapping {
    /// Geometric (base-2) mapping via IEEE-754 bit extraction: the bucket id
    /// is the biased exponent of the value refined by its top
    /// `mantissa_bits` mantissa bits, i.e. `v.to_bits() >> (52 - mantissa_bits)`.
    ///
    /// For non-negative finite `f64` the bit pattern is order-isomorphic to
    /// the value, so any right-shift of it is monotone. Zero and denormals
    /// shift into the lowest buckets (bucket 0 for `+0.0`), ties share a
    /// bucket exactly, and with `mantissa_bits = 4` each octave splits into
    /// 16 sub-buckets — fine enough that a bucket rarely holds more than a
    /// small slice of the value range, coarse enough that bucket counts stay
    /// bounded by the exponent range.
    Geometric {
        /// How many leading mantissa bits refine the exponent buckets
        /// (0 ⇒ one bucket per power of two). At most 32.
        mantissa_bits: u8,
    },
    /// Fixed-width (Δ-stepping) mapping: bucket `floor((v - origin) / width)`,
    /// clamped below at bucket 0.
    ///
    /// Floating-point division may place a boundary value one bucket off the
    /// ideal real-arithmetic boundary, but the mapping stays value-pure and
    /// monotone, which is all the determinism contract requires.
    Linear {
        /// Value mapped to the left edge of bucket 0.
        origin: f64,
        /// Bucket width Δ; must be positive and finite.
        width: f64,
    },
}

impl BucketMapping {
    /// The default geometric refinement: 16 sub-buckets per octave.
    pub const DEFAULT_MANTISSA_BITS: u8 = 4;

    /// The workspace-default mapping used by the solvers.
    pub fn geometric_default() -> Self {
        BucketMapping::Geometric {
            mantissa_bits: Self::DEFAULT_MANTISSA_BITS,
        }
    }

    /// Maps a non-negative finite value to its bucket id.
    ///
    /// Pure and monotone: see the crate-level determinism contract.
    ///
    /// # Panics
    /// Panics (debug assertions) on negative, NaN or infinite input.
    #[inline]
    pub fn bucket_of(&self, v: f64) -> u32 {
        debug_assert!(
            v.is_finite() && v >= 0.0,
            "bucket mapping requires non-negative finite values, got {v}"
        );
        match *self {
            BucketMapping::Geometric { mantissa_bits } => {
                debug_assert!(mantissa_bits <= 32);
                // `v + 0.0` canonicalises -0.0 (which passes the `>= 0.0`
                // check above) to +0.0 so its sign bit cannot leak into the
                // key; it is the identity on every other non-negative value.
                ((v + 0.0).to_bits() >> (52 - mantissa_bits as u64)) as u32
            }
            BucketMapping::Linear { origin, width } => {
                debug_assert!(width > 0.0 && width.is_finite());
                let b = ((v - origin) / width).floor();
                if b <= 0.0 {
                    0
                } else if b >= u32::MAX as f64 {
                    u32::MAX
                } else {
                    b as u32
                }
            }
        }
    }

    /// A value at (geometric: exactly; linear: within rounding of) the left
    /// edge of the bucket. Monotone in the bucket id.
    ///
    /// For the geometric mapping this is a true lower bound: every value in
    /// bucket `b` satisfies `lower_bound(b) <= v < lower_bound(b + 1)`. For
    /// the linear mapping it can overshoot a boundary value by one ulp-scale
    /// rounding, so readiness tests must compare exact keys (the queue does).
    #[inline]
    pub fn lower_bound(&self, bucket: u32) -> f64 {
        match *self {
            BucketMapping::Geometric { mantissa_bits } => {
                f64::from_bits((bucket as u64) << (52 - mantissa_bits as u64))
            }
            BucketMapping::Linear { origin, width } => origin + bucket as f64 * width,
        }
    }
}

/// One queued entry: an element id and its exact key.
pub type Entry = (u32, f64);

/// A deterministic monotone bucket queue.
///
/// Elements are `(id, key)` pairs; the key decides the bucket via the fixed
/// [`BucketMapping`], and entries inside a bucket keep insertion order.
/// Extraction walks buckets in ascending id and compares **exact keys**
/// against the caller's threshold, so floating-point bucket boundaries can
/// never change what is extracted — only how many buckets are touched while
/// finding it.
///
/// The queue does not deduplicate: callers that re-key elements either use
/// [`BucketQueue::update`] (eager removal) or insert fresh entries and drop
/// stale ones on extraction (lazy deletion) by checking a `current_key`
/// array on their side.
#[derive(Debug, Clone)]
pub struct BucketQueue {
    mapping: BucketMapping,
    buckets: BTreeMap<u32, Vec<Entry>>,
    len: usize,
}

impl BucketQueue {
    /// Creates an empty queue over the given mapping.
    pub fn new(mapping: BucketMapping) -> Self {
        BucketQueue {
            mapping,
            buckets: BTreeMap::new(),
            len: 0,
        }
    }

    /// The mapping this queue buckets by.
    pub fn mapping(&self) -> BucketMapping {
        self.mapping
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry at the right edge of its bucket.
    pub fn insert(&mut self, id: u32, key: f64) {
        let b = self.mapping.bucket_of(key);
        self.buckets.entry(b).or_default().push((id, key));
        self.len += 1;
    }

    /// The smallest non-empty bucket id, or `None` when empty.
    pub fn next_bucket(&self) -> Option<u32> {
        self.buckets.keys().next().copied()
    }

    /// A lower bound on every queued key (the left edge of the smallest
    /// non-empty bucket for the geometric mapping), or `None` when empty.
    pub fn min_key_bound(&self) -> Option<f64> {
        self.next_bucket().map(|b| self.mapping.lower_bound(b))
    }

    /// Re-keys one entry: removes `(id, old_key)` from its bucket (if
    /// present) and inserts `(id, new_key)`. Removal preserves the order of
    /// the bucket's remaining entries; the re-keyed entry joins the right
    /// edge of its new bucket.
    pub fn update(&mut self, id: u32, old_key: f64, new_key: f64) {
        let b = self.mapping.bucket_of(old_key);
        if let Some(bucket) = self.buckets.get_mut(&b) {
            if let Some(pos) = bucket
                .iter()
                .position(|&(eid, ekey)| eid == id && ekey.to_bits() == old_key.to_bits())
            {
                bucket.remove(pos);
                self.len -= 1;
                if bucket.is_empty() {
                    self.buckets.remove(&b);
                }
            }
        }
        self.insert(id, new_key);
    }

    /// Extracts every entry with exact key `<= threshold`, in canonical
    /// order: ascending bucket id, then left-to-right insertion order within
    /// each bucket. Entries above the threshold stay queued in order.
    ///
    /// Monotonicity of the mapping means only buckets with id
    /// `<= bucket_of(threshold)` can hold ready entries, so a call touches
    /// just the low end of the structure.
    pub fn extract_ready(&mut self, threshold: f64) -> Vec<Entry> {
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        let last = self.mapping.bucket_of(threshold);
        let mut emptied = Vec::new();
        for (&b, bucket) in self.buckets.range_mut(..=last) {
            // Stable partition: ready entries move out in order, the rest
            // keep their relative order.
            let mut kept = Vec::new();
            for &(id, key) in bucket.iter() {
                if key <= threshold {
                    out.push((id, key));
                } else {
                    kept.push((id, key));
                }
            }
            if kept.len() != bucket.len() {
                *bucket = kept;
                if bucket.is_empty() {
                    emptied.push(b);
                }
            }
        }
        for b in emptied {
            self.buckets.remove(&b);
        }
        self.len -= out.len();
        out
    }

    /// Removes and returns the entire smallest non-empty bucket (id and its
    /// entries in insertion order), or `None` when the queue is empty.
    pub fn extract_next_bucket(&mut self) -> Option<(u32, Vec<Entry>)> {
        let b = self.next_bucket()?;
        let entries = self.buckets.remove(&b).unwrap_or_default();
        self.len -= entries.len();
        Some((b, entries))
    }

    /// Lazy-refill extraction: like [`BucketQueue::extract_ready`], but when
    /// no entry is ready the `refill` hook is asked for more entries (e.g. a
    /// lazily-expanded distance prefix). Refilled entries are inserted and
    /// the extraction retried; an empty refill ends the loop.
    pub fn extract_ready_or_refill<F>(&mut self, threshold: f64, mut refill: F) -> Vec<Entry>
    where
        F: FnMut() -> Vec<Entry>,
    {
        loop {
            let ready = self.extract_ready(threshold);
            if !ready.is_empty() {
                return ready;
            }
            let fresh = refill();
            if fresh.is_empty() {
                return Vec::new();
            }
            for (id, key) in fresh {
                self.insert(id, key);
            }
        }
    }
}

/// Which event engine drives the facility-location round loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventEngine {
    /// The historical paths: greedy's full `O(m log m)` presort and
    /// primal-dual's per-iteration rescans. Kept as the reference
    /// implementation the bucket engine must byte-match.
    Scan,
    /// Bucket-queue event selection: greedy expands each facility's sorted
    /// distance prefix lazily bucket-by-bucket; primal-dual pops freeze and
    /// open events from bucket queues instead of rescanning.
    #[default]
    Bucket,
}

impl EventEngine {
    /// Stable string form used by the CLI and bench artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            EventEngine::Scan => "scan",
            EventEngine::Bucket => "bucket",
        }
    }
}

impl std::fmt::Display for EventEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for EventEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scan" => Ok(EventEngine::Scan),
            "bucket" => Ok(EventEngine::Bucket),
            other => Err(format!(
                "unknown event engine '{other}' (expected 'scan' or 'bucket')"
            )),
        }
    }
}

/// How k-center derives its candidate radii.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RadiusDeriver {
    /// The paper's derivation: sort all `O(n²)` distinct pairwise distances
    /// and binary-search them. Exact 2-approximation certificate, refused
    /// past the oracle's scratch cap. Preserves today's bytes.
    #[default]
    Exact,
    /// Sampling/quantile-sketch derivation: candidate radii come from a
    /// deterministic seeded sample of pairwise distances, probed
    /// coarse-to-fine through geometric buckets. `O(s²)` transient for a
    /// fixed sample size `s`, so it runs at the sparse/xlarge presets where
    /// the exact path refuses. May probe different radii than the exact
    /// path (still a valid `2·threshold` certificate for the radii it does
    /// certify).
    Sketch,
}

impl RadiusDeriver {
    /// Stable string form used by the CLI and bench artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            RadiusDeriver::Exact => "exact",
            RadiusDeriver::Sketch => "sketch",
        }
    }
}

impl std::fmt::Display for RadiusDeriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for RadiusDeriver {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(RadiusDeriver::Exact),
            "sketch" => Ok(RadiusDeriver::Sketch),
            other => Err(format!(
                "unknown radius deriver '{other}' (expected 'exact' or 'sketch')"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> BucketMapping {
        BucketMapping::geometric_default()
    }

    #[test]
    fn geometric_mapping_is_monotone_including_denormals() {
        // A gauntlet spanning zero, denormals, normals, and large values,
        // already sorted ascending.
        let values = [
            0.0,
            f64::from_bits(1),       // smallest positive denormal
            f64::from_bits(12345),   // another denormal
            f64::MIN_POSITIVE / 2.0, // denormal near the normal boundary
            f64::MIN_POSITIVE,       // smallest normal
            1e-300,
            1e-9,
            0.5,
            1.0 - f64::EPSILON,
            1.0,
            1.0 + f64::EPSILON,
            2.0,
            3.75,
            1e9,
            f64::MAX,
        ];
        for mb in [0u8, 1, 4, 8] {
            let m = BucketMapping::Geometric { mantissa_bits: mb };
            for w in values.windows(2) {
                assert!(
                    m.bucket_of(w[0]) <= m.bucket_of(w[1]),
                    "mb={mb}: bucket_of({}) > bucket_of({})",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn geometric_lower_bound_brackets_every_bucket() {
        let m = geo();
        for &v in &[0.0, f64::from_bits(7), f64::MIN_POSITIVE, 0.3, 1.0, 1e12] {
            let b = m.bucket_of(v);
            assert!(m.lower_bound(b) <= v, "lower_bound({b}) > {v}");
            assert!(v < m.lower_bound(b + 1), "{v} >= lower_bound({})", b + 1);
        }
        assert_eq!(m.lower_bound(0), 0.0);
    }

    #[test]
    fn ties_share_a_bucket_exactly() {
        let m = geo();
        let l = BucketMapping::Linear {
            origin: 0.0,
            width: 0.37,
        };
        for &v in &[0.0, 1e-310, 0.125, 1.0, 97.25] {
            let copy = v * 1.0;
            assert_eq!(m.bucket_of(v), m.bucket_of(copy));
            assert_eq!(l.bucket_of(v), l.bucket_of(copy));
        }
    }

    #[test]
    fn zero_and_denormals_land_in_bucket_zero_at_default_refinement() {
        let m = geo();
        assert_eq!(m.bucket_of(0.0), 0);
        // -0.0 compares >= 0.0 but carries a sign bit; it must land in the
        // same bucket as +0.0, not a sign-bit-polluted one.
        assert_eq!(m.bucket_of(-0.0), 0);
        // The default 4 refinement bits keep the tiniest denormals in
        // bucket 0 (their top mantissa bits are zero).
        assert_eq!(m.bucket_of(f64::from_bits(1)), 0);
    }

    #[test]
    fn linear_mapping_is_monotone_and_clamps_below_origin() {
        let m = BucketMapping::Linear {
            origin: 10.0,
            width: 2.5,
        };
        assert_eq!(m.bucket_of(0.0), 0, "below-origin clamps to bucket 0");
        assert_eq!(m.bucket_of(9.99), 0);
        assert_eq!(m.bucket_of(10.0), 0);
        assert_eq!(m.bucket_of(12.5), 1);
        assert_eq!(m.bucket_of(100.0), 36);
        let values = [0.0, 9.0, 10.0, 11.0, 12.49, 12.5, 13.0, 99.0, 1e6];
        for w in values.windows(2) {
            assert!(m.bucket_of(w[0]) <= m.bucket_of(w[1]));
        }
    }

    #[test]
    fn degenerate_single_bucket_range_still_extracts_exactly() {
        // A width so large every key collapses into bucket 0 — the queue
        // degenerates to one insertion-ordered list but readiness stays
        // exact because it compares keys, not boundaries.
        let m = BucketMapping::Linear {
            origin: 0.0,
            width: f64::MAX,
        };
        let mut q = BucketQueue::new(m);
        q.insert(0, 5.0);
        q.insert(1, 1.0);
        q.insert(2, 3.0);
        assert_eq!(q.next_bucket(), Some(0));
        let ready = q.extract_ready(3.0);
        assert_eq!(ready, vec![(1, 1.0), (2, 3.0)], "exact keys, queue order");
        assert_eq!(q.len(), 1);
        assert_eq!(q.extract_ready(f64::MAX), vec![(0, 5.0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn extraction_order_is_ascending_bucket_then_insertion() {
        let mut q = BucketQueue::new(geo());
        // Insert out of value order; ids record insertion order.
        q.insert(10, 8.0);
        q.insert(11, 1.0);
        q.insert(12, 1.0); // tie with 11 — same bucket, after it
        q.insert(13, 2.0);
        q.insert(14, 0.0);
        let all = q.extract_ready(f64::MAX);
        assert_eq!(
            all,
            vec![(14, 0.0), (11, 1.0), (12, 1.0), (13, 2.0), (10, 8.0)]
        );
    }

    #[test]
    fn extract_ready_respects_exact_threshold_within_a_bucket() {
        let mut q = BucketQueue::new(geo());
        // 1.0 and 1.05 share the mb=4 bucket [1.0, 1.0625); threshold 1.0
        // must take only the first.
        q.insert(0, 1.05);
        q.insert(1, 1.0);
        assert_eq!(q.extract_ready(1.0), vec![(1, 1.0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.extract_ready(1.05), vec![(0, 1.05)]);
    }

    #[test]
    fn update_rekeys_and_preserves_order_of_the_rest() {
        let mut q = BucketQueue::new(geo());
        q.insert(0, 4.0);
        q.insert(1, 4.0);
        q.insert(2, 4.0);
        q.update(1, 4.0, 0.5);
        assert_eq!(q.len(), 3);
        let all = q.extract_ready(f64::MAX);
        assert_eq!(all, vec![(1, 0.5), (0, 4.0), (2, 4.0)]);
    }

    #[test]
    fn refill_hook_feeds_lazy_expansion() {
        let mut q = BucketQueue::new(geo());
        let mut batches = vec![vec![(1, 0.25)], vec![(2, 9.0)]];
        // Nothing queued: first refill delivers an unready entry, the second
        // a ready one; the loop keeps pulling until something is ready.
        let ready = q.extract_ready_or_refill(1.0, || batches.pop().unwrap_or_default());
        assert_eq!(ready, vec![(1, 0.25)]);
        assert_eq!(q.len(), 1, "the unready refill entry stays queued");
        // Exhausted refill on an unready queue ends the loop empty-handed.
        let none = q.extract_ready_or_refill(1.0, Vec::new);
        assert!(none.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn extract_next_bucket_removes_whole_bucket_in_order() {
        let mut q = BucketQueue::new(geo());
        q.insert(5, 2.0);
        q.insert(6, 2.01);
        q.insert(7, 64.0);
        let (b, entries) = q.extract_next_bucket().expect("non-empty");
        assert_eq!(b, geo().bucket_of(2.0));
        assert_eq!(entries, vec![(5, 2.0), (6, 2.01)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.min_key_bound(), Some(64.0));
    }

    #[test]
    fn mapping_is_value_pure_across_queue_instances() {
        // The same keys inserted in different interleavings produce the same
        // bucket shape (ids and per-bucket multisets): bucket id depends on
        // value alone.
        let keys = [3.0, 0.1, 7.5, 0.1, 2.25];
        let mut a = BucketQueue::new(geo());
        let mut b = BucketQueue::new(geo());
        for (i, &k) in keys.iter().enumerate() {
            a.insert(i as u32, k);
        }
        for (i, &k) in keys.iter().enumerate().rev() {
            b.insert(i as u32, k);
        }
        let mut from_a = a.extract_ready(f64::MAX);
        let mut from_b = b.extract_ready(f64::MAX);
        from_a.sort_by_key(|&(id, _)| id);
        from_b.sort_by_key(|&(id, _)| id);
        assert_eq!(from_a, from_b);
    }

    #[test]
    fn engine_and_deriver_parse_round_trip() {
        assert_eq!("scan".parse::<EventEngine>().unwrap(), EventEngine::Scan);
        assert_eq!(
            "bucket".parse::<EventEngine>().unwrap(),
            EventEngine::Bucket
        );
        assert!("julienne".parse::<EventEngine>().is_err());
        assert_eq!(EventEngine::default(), EventEngine::Bucket);
        assert_eq!(
            "exact".parse::<RadiusDeriver>().unwrap(),
            RadiusDeriver::Exact
        );
        assert_eq!(
            "sketch".parse::<RadiusDeriver>().unwrap(),
            RadiusDeriver::Sketch
        );
        assert!("quantile".parse::<RadiusDeriver>().is_err());
        assert_eq!(RadiusDeriver::default(), RadiusDeriver::Exact);
        for e in [EventEngine::Scan, EventEngine::Bucket] {
            assert_eq!(e.as_str().parse::<EventEngine>().unwrap(), e);
        }
        for d in [RadiusDeriver::Exact, RadiusDeriver::Sketch] {
            assert_eq!(d.as_str().parse::<RadiusDeriver>().unwrap(), d);
        }
    }
}
