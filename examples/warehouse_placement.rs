//! Warehouse placement — the motivating facility-location scenario.
//!
//! A retailer has 400 stores (clients) and 80 candidate warehouse sites (facilities);
//! opening a warehouse has a fixed cost and every store must be served from some open
//! warehouse, paying the travel distance. The program runs all three parallel
//! algorithms from the paper plus the two sequential baselines and prints a comparison
//! table, including each algorithm's certified ratio where a certificate is available.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin warehouse_placement --release
//! ```

use parfaclo_core::{greedy, lp_rounding, primal_dual, FlConfig};
use parfaclo_examples::{format_ratio, print_row};
use parfaclo_lp::solve_facility_lp;
use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
use parfaclo_seq_baselines::{jain_vazirani, jms_greedy};

fn main() {
    // Stores cluster around 12 towns; candidate warehouses are scattered uniformly.
    let params = GenParams::gaussian_clusters(400, 80, 12)
        .with_seed(2024)
        .with_cost_model(FacilityCostModel::UniformRange { lo: 20.0, hi: 60.0 });
    let inst = gen::facility_location(params);
    println!(
        "warehouse placement: {} stores, {} candidate sites",
        inst.num_clients(),
        inst.num_facilities()
    );
    println!();
    println!("  {:<28} {:>12}   {}", "algorithm", "cost", "notes");

    let cfg = FlConfig::new(0.1).with_seed(1);

    // Sequential baselines.
    let seq_greedy = jms_greedy(&inst);
    print_row(
        "JMS greedy (sequential)",
        seq_greedy.cost,
        &format!("{} facilities, {} rounds", seq_greedy.open.len(), seq_greedy.rounds),
    );
    let seq_jv = jain_vazirani(&inst);
    print_row(
        "Jain-Vazirani (sequential)",
        seq_jv.cost,
        &format_ratio(seq_jv.cost, seq_jv.alpha.iter().sum()),
    );

    // Parallel algorithms.
    let par_greedy = greedy::parallel_greedy(&inst, &cfg);
    print_row(
        "parallel greedy (Alg 4.1)",
        par_greedy.cost,
        &format!(
            "{} rounds, {}",
            par_greedy.rounds,
            format_ratio(par_greedy.cost, par_greedy.lower_bound)
        ),
    );
    let par_pd = primal_dual::parallel_primal_dual(&inst, &cfg);
    print_row(
        "parallel primal-dual (Alg 5.1)",
        par_pd.cost,
        &format!(
            "{} rounds, {}",
            par_pd.rounds,
            format_ratio(par_pd.cost, par_pd.lower_bound)
        ),
    );

    // LP rounding needs an optimal LP solution; the simplex substrate is polynomial but
    // slow, so round a smaller instance of the same shape to keep the example snappy.
    let small = gen::facility_location(
        GenParams::gaussian_clusters(40, 12, 6)
            .with_seed(2024)
            .with_cost_model(FacilityCostModel::UniformRange { lo: 20.0, hi: 60.0 }),
    );
    match solve_facility_lp(&small) {
        Ok(lp) => {
            let rounded = lp_rounding::parallel_lp_rounding(&small, &lp, &cfg);
            println!();
            println!(
                "  LP rounding demo on a {}x{} sub-instance:",
                small.num_clients(),
                small.num_facilities()
            );
            print_row(
                "LP optimum (fractional)",
                lp.value(),
                &format!("{} simplex pivots", lp.pivots),
            );
            print_row(
                "parallel rounding (Sec 6.2)",
                rounded.cost,
                &format_ratio(rounded.cost, rounded.lower_bound),
            );
        }
        Err(e) => println!("LP solve failed: {e}"),
    }
}
