//! Warehouse placement — the motivating facility-location scenario.
//!
//! A retailer has 400 stores (clients) and 80 candidate warehouse sites (facilities);
//! opening a warehouse has a fixed cost and every store must be served from some open
//! warehouse, paying the travel distance. The program enumerates every registered
//! facility-location solver — the paper's parallel algorithms and the sequential
//! baselines alike — through the unified registry and prints a comparison table,
//! including each algorithm's certified ratio where a certificate is available.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin warehouse_placement --release
//! ```

use parfaclo_api::{AnyInstance, ProblemKind, RunConfig};
use parfaclo_bench::standard_registry;
use parfaclo_examples::{format_ratio, print_row};
use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};

fn main() {
    parfaclo_bench::reset_sigpipe();
    // Stores cluster around 12 towns; candidate warehouses are scattered uniformly.
    let params = GenParams::gaussian_clusters(400, 80, 12)
        .with_seed(2024)
        .with_cost_model(FacilityCostModel::UniformRange { lo: 20.0, hi: 60.0 });
    let fl_inst = gen::facility_location(params);
    println!(
        "warehouse placement: {} stores, {} candidate sites",
        fl_inst.num_clients(),
        fl_inst.num_facilities()
    );
    let inst = AnyInstance::Fl(fl_inst);
    println!();
    println!("  {:<28} {:>12}   notes", "algorithm", "cost");

    let registry = standard_registry();
    let cfg = RunConfig::new(0.1).with_seed(1);

    for solver in registry.iter() {
        if solver.problem() != ProblemKind::FacilityLocation {
            continue;
        }
        // The LP-rounding solver solves the full LP relaxation with the
        // workspace's simplex substrate — polynomial but far too slow for a
        // 400x80 instance; it gets its own demo below.
        if solver.name() == "lp-rounding" {
            continue;
        }
        let run = solver.run(&inst, &cfg).expect("facility-location instance");
        print_row(
            solver.name(),
            run.cost,
            &format!(
                "{} sites, {} rounds, {}",
                run.selected.len(),
                run.rounds,
                format_ratio(run.cost, run.lower_bound)
            ),
        );
    }

    // LP rounding demo on a smaller instance of the same shape.
    let small = AnyInstance::Fl(gen::facility_location(
        GenParams::gaussian_clusters(40, 12, 6)
            .with_seed(2024)
            .with_cost_model(FacilityCostModel::UniformRange { lo: 20.0, hi: 60.0 }),
    ));
    println!();
    println!("  LP rounding demo on a 40x12 sub-instance:");
    let run = registry
        .run("lp-rounding", &small, &cfg)
        .expect("lp-rounding accepts facility-location instances");
    let lp_value = run
        .extra
        .iter()
        .find(|(key, _)| key == "lp_value")
        .map(|(_, v)| *v)
        .unwrap_or(run.lower_bound);
    print_row("LP optimum (fractional)", lp_value, "simplex substrate");
    print_row(
        "parallel rounding (Sec 6.2)",
        run.cost,
        &format_ratio(run.cost, run.lower_bound),
    );
}
