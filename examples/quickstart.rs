//! Quickstart: generate a facility-location instance, solve it with the parallel
//! primal-dual algorithm, and print the solution together with its certified
//! approximation ratio.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin quickstart --release
//! ```

use parfaclo_core::{primal_dual, FlConfig};
use parfaclo_examples::format_ratio;
use parfaclo_metric::gen::{self, GenParams};

fn main() {
    // 1. Generate a synthetic instance: 200 clients, 50 candidate facilities, points
    //    uniform in a square, facility costs proportional to the spatial spread.
    let params = GenParams::uniform_square(200, 50).with_seed(42);
    let inst = gen::facility_location(params);
    println!(
        "instance: {} clients x {} facilities (m = {})",
        inst.num_clients(),
        inst.num_facilities(),
        inst.m()
    );

    // 2. Run the parallel primal-dual algorithm (Theorem 5.4: (3 + ε)-approximation).
    let cfg = FlConfig::new(0.1).with_seed(7);
    let sol = primal_dual::parallel_primal_dual(&inst, &cfg);

    // 3. Inspect the result. `lower_bound` is the dual-feasible certificate Σ_j α_j,
    //    so `cost / lower_bound` is a *certified* upper bound on the true ratio.
    println!("opened {} facilities: {:?}", sol.open.len(), sol.open);
    println!(
        "cost = {:.2} (opening {:.2} + connection {:.2})",
        sol.cost, sol.opening_cost, sol.connection_cost
    );
    println!("certified ratio: {}", format_ratio(sol.cost, sol.lower_bound));
    println!(
        "rounds = {}, basic matrix ops = {}, element ops = {}",
        sol.rounds, sol.work.primitive_calls, sol.work.element_ops
    );
}
