//! Quickstart: generate a facility-location instance, solve it through the
//! unified solver registry, and print the solution together with its
//! certified approximation ratio.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin quickstart --release
//! ```

use parfaclo_api::{AnyInstance, RunConfig};
use parfaclo_bench::standard_registry;
use parfaclo_examples::format_ratio;
use parfaclo_metric::gen::{self, GenParams};

fn main() {
    parfaclo_bench::reset_sigpipe();
    // 1. Generate a synthetic instance: 200 clients, 50 candidate facilities, points
    //    uniform in a square, facility costs proportional to the spatial spread.
    let params = GenParams::uniform_square(200, 50).with_seed(42);
    let inst = AnyInstance::Fl(gen::facility_location(params));
    println!("instance: {} clients (m = {})", inst.n(), inst.m());

    // 2. Run the parallel primal-dual algorithm (Theorem 5.4: (3 + ε)-approximation)
    //    by name through the registry — the same way the `parfaclo` CLI would with
    //    `parfaclo run --solver primal-dual`.
    let registry = standard_registry();
    let cfg = RunConfig::new(0.1).with_seed(7);
    let run = registry
        .run("primal-dual", &inst, &cfg)
        .expect("primal-dual accepts facility-location instances");

    // 3. Inspect the unified Run envelope. `lower_bound` is the dual-feasible
    //    certificate Σ_j α_j, so `cost / lower_bound` is a *certified* upper bound
    //    on the true ratio.
    println!(
        "opened {} facilities: {:?}",
        run.selected.len(),
        run.selected
    );
    println!("cost = {:.2}", run.cost);
    println!(
        "certified ratio: {}",
        format_ratio(run.cost, run.lower_bound)
    );
    println!(
        "rounds = {}, basic matrix ops = {}, element ops = {}, wall = {:.1} ms",
        run.rounds, run.work.primitive_calls, run.work.element_ops, run.wall_ms
    );

    // 4. The same record serialises to the JSON schema every experiment shares.
    println!("\nas JSON: {}", run.to_json());
}
