//! Document / feature-vector clustering — the k-median & k-means scenario.
//!
//! 300 items with 2-D feature embeddings (generated as Gaussian topic clusters) are
//! grouped into `k = 6` clusters. The program runs the registered local-search solvers
//! (parallel Section 7 for both objectives, plus the sequential k-median baseline)
//! through the unified registry, and compares the k-means result against Lloyd's
//! heuristic — the classical practical baseline that carries no worst-case guarantee
//! and places centroids anywhere in space, so it stays a direct call rather than a
//! registered solver.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin document_kmeans --release
//! ```

use parfaclo_api::{AnyInstance, RunConfig};
use parfaclo_bench::standard_registry;
use parfaclo_examples::print_row;
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::lloyd_kmeans;

fn main() {
    parfaclo_bench::reset_sigpipe();
    let k = 6;
    let cluster_inst = gen::clustering(GenParams::gaussian_clusters(300, 300, k).with_seed(7));
    println!("document clustering: {} items, k = {k}", cluster_inst.n());
    println!();
    println!("  {:<28} {:>12}   notes", "method", "cost");

    let registry = standard_registry();
    let cfg = RunConfig::new(0.1).with_seed(5).with_k(k);
    let inst = AnyInstance::Cluster(cluster_inst.clone());

    let mut kmedian_run = None;
    for (name, label) in [
        ("kmedian-ls", "parallel k-median (Thm 7.1)"),
        ("kmedian-seq", "sequential k-median"),
        ("kmeans-ls", "parallel k-means (81+eps)"),
    ] {
        let run = registry
            .run(name, &inst, &cfg)
            .expect("clustering instance");
        let initial = run
            .extra
            .iter()
            .find(|(key, _)| key == "initial_cost")
            .map(|(_, v)| format!(", init {v:.1}"))
            .unwrap_or_default();
        print_row(
            label,
            run.cost,
            &format!("{} swap rounds{initial}", run.rounds),
        );
        if name == "kmedian-ls" {
            kmedian_run = Some(run);
        }
    }

    // Lloyd's heuristic places centroids anywhere in space, so its cost can be lower;
    // it is the practical baseline the paper's guarantees are traded against.
    let lloyd = lloyd_kmeans(&cluster_inst, k, 100, 11);
    print_row(
        "Lloyd's heuristic",
        lloyd.cost,
        &format!("{} iterations, unconstrained centroids", lloyd.iterations),
    );

    let kmedian_run = kmedian_run.expect("kmedian-ls ran");
    println!();
    println!(
        "cluster sizes (parallel k-median): {:?}",
        cluster_sizes(&kmedian_run.selected, &kmedian_run.assignment)
    );
}

/// Number of items assigned to each selected center, straight from the Run
/// envelope's assignment vector.
fn cluster_sizes(centers: &[usize], assignment: &[usize]) -> Vec<usize> {
    centers
        .iter()
        .map(|&c| assignment.iter().filter(|&&a| a == c).count())
        .collect()
}
