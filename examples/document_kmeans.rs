//! Document / feature-vector clustering — the k-median & k-means scenario.
//!
//! 300 items with 2-D feature embeddings (generated as Gaussian topic clusters) are
//! grouped into `k = 6` clusters. The program runs the parallel local search of
//! Section 7 for both the k-median and the k-means objective, and compares the k-means
//! result against Lloyd's heuristic — the classical practical baseline that carries no
//! worst-case guarantee.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin document_kmeans --release
//! ```

use parfaclo_examples::print_row;
use parfaclo_kclustering::{parallel_kmeans, parallel_kmedian, LocalSearchConfig};
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_seq_baselines::{lloyd_kmeans, local_search_kmedian};

fn main() {
    let k = 6;
    let inst = gen::clustering(GenParams::gaussian_clusters(300, 300, k).with_seed(7));
    println!("document clustering: {} items, k = {k}", inst.n());
    println!();
    println!("  {:<28} {:>12}   {}", "method", "cost", "notes");

    let cfg = LocalSearchConfig::new(0.1).with_seed(5);

    // k-median (sum of distances).
    let kmed = parallel_kmedian(&inst, k, &cfg);
    print_row(
        "parallel k-median (Thm 7.1)",
        kmed.cost,
        &format!(
            "{} swap rounds, init {:.1} -> {:.1}",
            kmed.rounds, kmed.initial_cost, kmed.cost
        ),
    );
    let seq_kmed = local_search_kmedian(&inst, k, 0.1);
    print_row(
        "sequential k-median",
        seq_kmed.cost,
        &format!("{} swaps", seq_kmed.swaps),
    );

    // k-means (sum of squared distances), centers restricted to input points.
    let kmeans = parallel_kmeans(&inst, k, &cfg);
    print_row(
        "parallel k-means (81+eps)",
        kmeans.cost,
        &format!("{} swap rounds", kmeans.rounds),
    );

    // Lloyd's heuristic places centroids anywhere in space, so its cost can be lower;
    // it is the practical baseline the paper's guarantees are traded against.
    let lloyd = lloyd_kmeans(&inst, k, 100, 11);
    print_row(
        "Lloyd's heuristic",
        lloyd.cost,
        &format!("{} iterations, unconstrained centroids", lloyd.iterations),
    );

    println!();
    println!(
        "cluster sizes (parallel k-median): {:?}",
        cluster_sizes(&inst, &kmed.centers)
    );
}

fn cluster_sizes(
    inst: &parfaclo_metric::ClusterInstance,
    centers: &[usize],
) -> Vec<usize> {
    let assignment = inst.center_assignment(centers);
    centers
        .iter()
        .map(|&c| assignment.iter().filter(|&&a| a == c).count())
        .collect()
}
