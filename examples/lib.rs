//! Shared helpers for the `parfaclo` example binaries.
//!
//! The binaries in this package are small end-to-end programs that exercise the public
//! API on realistic scenarios:
//!
//! * `quickstart` — the smallest possible useful program: generate an instance, run the
//!   parallel primal-dual algorithm, print the solution and its certificate.
//! * `warehouse_placement` — facility location proper: choose which candidate warehouse
//!   sites to open to serve a set of stores, comparing all three parallel algorithms and
//!   the sequential baselines.
//! * `sensor_clustering` — k-center: place `k` gateways so the worst sensor-to-gateway
//!   distance is minimised (the bottleneck objective).
//! * `document_kmeans` — k-means / k-median: cluster feature vectors with the parallel
//!   local search and compare against Lloyd's heuristic.
//!
//! Run any of them with `cargo run -p parfaclo-examples --bin <name> --release`.

/// Formats a ratio ("x of lower bound") for display, treating a missing bound as "n/a".
pub fn format_ratio(cost: f64, lower_bound: f64) -> String {
    if lower_bound > 0.0 {
        format!(
            "{:.3}x of lower bound {:.2}",
            cost / lower_bound,
            lower_bound
        )
    } else {
        "n/a".to_string()
    }
}

/// Prints a simple aligned table row (used by the example binaries for readable output).
pub fn print_row(label: &str, cost: f64, detail: &str) {
    println!("  {label:<28} {cost:>12.2}   {detail}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ratio_handles_zero_bound() {
        assert_eq!(format_ratio(10.0, 0.0), "n/a");
        assert!(format_ratio(10.0, 5.0).starts_with("2.000x"));
    }
}
