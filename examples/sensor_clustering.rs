//! Sensor gateway placement — the k-center scenario.
//!
//! A field deployment has 600 sensors; `k = 8` gateways must be placed *at sensor
//! locations* so that the worst-case sensor-to-gateway distance (which determines the
//! radio power budget) is minimised. This is exactly metric k-center. The program runs
//! every registered k-center solver — the parallel Hochbaum–Shmoys algorithm of
//! Section 6.1 and the sequential Gonzalez / Hochbaum–Shmoys baselines — through the
//! unified registry and compares them with the combinatorial lower bound,
//! demonstrating the 2-approximation in practice.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin sensor_clustering --release
//! ```

use parfaclo_api::{AnyInstance, RunConfig};
use parfaclo_bench::standard_registry;
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_metric::lower_bounds::kcenter_lower_bound;

fn main() {
    parfaclo_bench::reset_sigpipe();
    let k = 8;
    let cluster_inst = gen::clustering(GenParams::gaussian_clusters(600, 600, 10).with_seed(99));
    println!(
        "sensor clustering: {} sensors, k = {k} gateways",
        cluster_inst.n()
    );

    let lb = kcenter_lower_bound(&cluster_inst, k);
    println!("combinatorial lower bound on the optimal radius: {lb:.3}");
    println!();

    let inst = AnyInstance::Cluster(cluster_inst);
    let registry = standard_registry();
    let cfg = RunConfig::new(0.1).with_seed(3).with_k(k);

    let mut parallel_centers = Vec::new();
    for name in ["kcenter", "gonzalez", "hs-kcenter"] {
        let run = registry
            .run(name, &inst, &cfg)
            .expect("clustering instance");
        let detail = if name == "kcenter" {
            parallel_centers = run.selected.clone();
            let threshold = run.lower_bound;
            format!(
                "(threshold {threshold:.3}, {} probes, {} Luby rounds)",
                run.rounds, run.inner_rounds
            )
        } else {
            String::new()
        };
        println!("{name}: radius {:.3}  {detail}", run.cost);
        println!(
            "  ratio vs combinatorial lower bound: {:.3} (guarantee: 2.0)",
            run.cost / lb.max(f64::MIN_POSITIVE)
        );
    }

    println!();
    println!("gateways chosen by the parallel algorithm: {parallel_centers:?}");
}
