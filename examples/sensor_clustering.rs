//! Sensor gateway placement — the k-center scenario.
//!
//! A field deployment has 600 sensors; `k = 8` gateways must be placed *at sensor
//! locations* so that the worst-case sensor-to-gateway distance (which determines the
//! radio power budget) is minimised. This is exactly metric k-center. The program runs
//! the parallel Hochbaum–Shmoys algorithm of Section 6.1 and compares it with the
//! sequential Gonzalez and Hochbaum–Shmoys baselines and with the combinatorial lower
//! bound, demonstrating the 2-approximation in practice.
//!
//! ```text
//! cargo run -p parfaclo-examples --bin sensor_clustering --release
//! ```

use parfaclo_kclustering::parallel_kcenter;
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_metric::lower_bounds::kcenter_lower_bound;
use parfaclo_seq_baselines::{gonzalez_kcenter, hochbaum_shmoys_kcenter};

fn main() {
    let k = 8;
    let inst = gen::clustering(GenParams::gaussian_clusters(600, 600, 10).with_seed(99));
    println!("sensor clustering: {} sensors, k = {k} gateways", inst.n());

    let lb = kcenter_lower_bound(&inst, k);
    println!("combinatorial lower bound on the optimal radius: {lb:.3}");
    println!();

    let par = parallel_kcenter(&inst, k, 3, ExecPolicy::Parallel);
    println!(
        "parallel Hochbaum-Shmoys (Thm 6.1): radius {:.3}  (threshold {:.3}, {} probes, {} Luby rounds)",
        par.radius, par.threshold, par.probes, par.luby_rounds
    );
    println!(
        "  certified ratio vs lower bound: {:.3} (guarantee: 2.0)",
        par.radius / lb.max(f64::MIN_POSITIVE)
    );

    let gonz = gonzalez_kcenter(&inst, k);
    println!("Gonzalez farthest-point (sequential): radius {:.3}", gonz.radius);

    let hs = hochbaum_shmoys_kcenter(&inst, k);
    println!("Hochbaum-Shmoys (sequential): radius {:.3}", hs.radius);

    println!();
    println!("gateways chosen by the parallel algorithm: {:?}", par.centers);
}
