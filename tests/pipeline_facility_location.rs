//! End-to-end facility-location pipelines across the whole workspace.

use parfaclo_core::{greedy, lp_rounding, primal_dual, verify, FlConfig};
use parfaclo_lp::solve_facility_lp;
use parfaclo_metric::gen::{self, standard_suite, GenParams};
use parfaclo_seq_baselines::{jain_vazirani, jms_greedy};

/// Every parallel algorithm produces a structurally valid solution on every workload of
/// the standard suite.
#[test]
fn all_algorithms_valid_on_standard_suite() {
    for wl in standard_suite(40, 16, 11) {
        let inst = gen::facility_location(wl.params);
        let cfg = FlConfig::new(0.1).with_seed(3);

        let g = greedy::parallel_greedy(&inst, &cfg);
        verify::verify_solution(&inst, &g)
            .unwrap_or_else(|e| panic!("greedy invalid on {}: {e}", wl.name));

        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        verify::verify_solution(&inst, &pd)
            .unwrap_or_else(|e| panic!("primal-dual invalid on {}: {e}", wl.name));
    }
}

/// The full LP pipeline: build + solve the LP, round it, verify the result and the
/// (4+ε) guarantee relative to the LP value.
#[test]
fn lp_rounding_pipeline() {
    for seed in [1u64, 2, 3] {
        let inst = gen::facility_location(GenParams::gaussian_clusters(12, 7, 3).with_seed(seed));
        let lp = solve_facility_lp(&inst).expect("LP solve");
        lp.check_feasible(&inst, 1e-6).expect("LP feasibility");
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let sol = lp_rounding::parallel_lp_rounding(&inst, &lp, &cfg);
        verify::verify_solution(&inst, &sol).expect("rounding produces a valid solution");
        assert!(
            sol.cost <= (4.0 + 0.2) * lp.value() + 1e-6,
            "seed {seed}: rounding ratio {} exceeds 4+ε",
            sol.cost / lp.value()
        );
    }
}

/// Parallel algorithms and their sequential counterparts coexist on the same instance
/// and their costs relate as the theory predicts (each is within its guarantee of the
/// common dual/LP lower bound).
#[test]
fn parallel_and_sequential_agree_on_quality_scale() {
    let inst = gen::facility_location(GenParams::uniform_square(60, 24).with_seed(5));
    let cfg = FlConfig::new(0.1).with_seed(5);

    let seq_g = jms_greedy(&inst);
    let seq_jv = jain_vazirani(&inst);
    let par_g = greedy::parallel_greedy(&inst, &cfg);
    let par_pd = primal_dual::parallel_primal_dual(&inst, &cfg);

    // A common certified lower bound: the JV dual (exactly feasible).
    let dual: f64 = seq_jv.alpha.iter().sum();
    assert!(dual > 0.0);
    for (name, cost, factor) in [
        ("sequential JMS", seq_g.cost, 1.861),
        ("sequential JV", seq_jv.cost, 3.0),
        ("parallel greedy", par_g.cost, 3.722 * 1.21),
        ("parallel primal-dual", par_pd.cost, 3.0 * 1.21),
    ] {
        assert!(
            cost >= dual - 1e-6,
            "{name}: cost {cost} below the dual lower bound {dual}"
        );
        assert!(
            cost <= factor * 3.0 * dual + 1e-6,
            "{name}: cost {cost} implausibly far above the lower bound {dual}"
        );
    }
}

/// Solutions survive a serialisation round trip of the instance (IO substrate).
#[test]
fn io_round_trip_preserves_solution_costs() {
    let inst = gen::facility_location(GenParams::grid(30, 12).with_seed(0));
    let text = parfaclo_metric::io::write_fl_instance(&inst);
    let back = parfaclo_metric::io::read_fl_instance(&text).expect("parse");
    let cfg = FlConfig::new(0.2).with_seed(8);
    let a = primal_dual::parallel_primal_dual(&inst, &cfg);
    let b = primal_dual::parallel_primal_dual(&back, &cfg);
    assert_eq!(a.open, b.open);
    assert!((a.cost - b.cost).abs() < 1e-9);
}

/// The epsilon knob trades rounds for quality in the expected direction on a larger
/// instance: larger ε ⇒ no more rounds than smaller ε.
#[test]
fn epsilon_controls_round_count() {
    let inst = gen::facility_location(GenParams::uniform_square(80, 32).with_seed(9));
    let tight = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(0.02).with_seed(1));
    let loose = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(0.5).with_seed(1));
    assert!(loose.rounds < tight.rounds);
    // Both still valid.
    assert!(loose.cost >= loose.lower_bound - 1e-9);
    assert!(tight.cost >= tight.lower_bound - 1e-9);
}
