//! Property-based certification of the approximation guarantees.
//!
//! proptest generates random small instances (random positive facility costs, random
//! points in a square) and asserts, against brute-force optima and exact dual / LP
//! lower bounds, that every algorithm stays within its proven factor and that the
//! substrate invariants (metric axioms, prefix-sum correctness, dominator-set validity)
//! hold on arbitrary inputs — not just the hand-picked seeds of the unit tests.

use proptest::prelude::*;

use parfaclo_core::{greedy, primal_dual, FlConfig};
use parfaclo_dominator::maxdom::{is_maximal_dominator_set, max_dom};
use parfaclo_dominator::maxudom::{is_maximal_u_dominator_set, max_u_dom};
use parfaclo_dominator::{BipartiteGraph, DenseGraph};
use parfaclo_kclustering::{parallel_kcenter, parallel_kmedian, LocalSearchConfig};
use parfaclo_lp::dual;
use parfaclo_matrixops::{ops, scan, CostMeter, ExecPolicy};
use parfaclo_metric::lower_bounds::{self, ClusterObjective};
use parfaclo_metric::{ClusterInstance, DistanceMatrix, FlInstance, Point};

/// Strategy: a small facility-location instance from random 2-D points and costs.
fn small_fl_instance() -> impl Strategy<Value = FlInstance> {
    (2usize..7, 2usize..6).prop_flat_map(|(nc, nf)| {
        (
            proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), nc),
            proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), nf),
            proptest::collection::vec(0.0f64..50.0, nf),
        )
            .prop_map(|(cpts, fpts, costs)| {
                let clients: Vec<Point> = cpts.into_iter().map(|(x, y)| Point::xy(x, y)).collect();
                let facilities: Vec<Point> =
                    fpts.into_iter().map(|(x, y)| Point::xy(x, y)).collect();
                FlInstance::from_points(costs, clients, facilities)
            })
    })
}

/// Strategy: a small clustering instance from random 2-D points.
fn small_cluster_instance() -> impl Strategy<Value = ClusterInstance> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..10).prop_map(|pts| {
        ClusterInstance::from_points(pts.into_iter().map(|(x, y)| Point::xy(x, y)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel greedy stays within (3.722 + ε)·opt and its certificate is valid.
    #[test]
    fn prop_greedy_within_factor(inst in small_fl_instance(), seed in 0u64..1000) {
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let sol = greedy::parallel_greedy(&inst, &cfg);
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        prop_assert!(sol.cost <= (3.722 + 0.1) * opt + 1e-6,
            "cost {} vs opt {opt}", sol.cost);
        prop_assert!(sol.cost >= opt - 1e-9);
        prop_assert!(sol.lower_bound <= opt + 1e-6);
    }

    /// Parallel primal-dual stays within (3 + O(ε))·opt and its α is dual feasible.
    #[test]
    fn prop_primal_dual_within_factor(inst in small_fl_instance(), seed in 0u64..1000) {
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let sol = primal_dual::parallel_primal_dual(&inst, &cfg);
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        prop_assert!(sol.cost <= (3.0 + 0.4) * opt + 1e-6,
            "cost {} vs opt {opt}", sol.cost);
        prop_assert!(dual::check_alpha_feasible(&inst, &sol.alpha, 1e-6).is_ok());
        prop_assert!(dual::dual_value(&sol.alpha) <= opt + 1e-6);
    }

    /// Parallel k-center is a 2-approximation on arbitrary point sets.
    #[test]
    fn prop_kcenter_two_approx(inst in small_cluster_instance(), k in 1usize..4, seed in 0u64..100) {
        let k = k.min(inst.n());
        let sol = parallel_kcenter(&inst, k, seed, ExecPolicy::Sequential);
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
        prop_assert!(sol.radius <= 2.0 * opt + 1e-9, "radius {} vs opt {opt}", sol.radius);
    }

    /// Parallel k-median local search is a (5 + ε)-approximation on arbitrary point sets.
    #[test]
    fn prop_kmedian_within_factor(inst in small_cluster_instance(), seed in 0u64..100) {
        let k = 2usize.min(inst.n());
        let sol = parallel_kmedian(&inst, k, &LocalSearchConfig::new(0.1).with_seed(seed));
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KMedian);
        prop_assert!(sol.cost <= 5.1 * opt + 1e-6, "cost {} vs opt {opt}", sol.cost);
        prop_assert!(sol.cost >= opt - 1e-9);
    }

    /// Euclidean instances always satisfy the (bipartite) triangle inequality.
    #[test]
    fn prop_generated_instances_are_metric(inst in small_fl_instance()) {
        prop_assert!(parfaclo_metric::validate::check_fl_metric(&inst, 1e-6).is_ok());
    }

    /// Parallel prefix sums agree with the sequential reference on arbitrary data.
    #[test]
    fn prop_scan_parallel_matches_sequential(data in proptest::collection::vec(-1e6f64..1e6, 0..300)) {
        let meter = CostMeter::new();
        for op in [ops::AssocOp::Add, ops::AssocOp::Min, ops::AssocOp::Max] {
            let s = scan::inclusive_scan(&data, op, ExecPolicy::Sequential, &meter);
            let p = scan::inclusive_scan(&data, op, ExecPolicy::Parallel, &meter);
            for (a, b) in s.iter().zip(p.iter()) {
                prop_assert!(a == b || (a - b).abs() <= 1e-6 * (1.0 + a.abs()));
            }
        }
    }

    /// MaxDom always returns a maximal dominator set on random graphs.
    #[test]
    fn prop_maxdom_valid(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40), seed in 0u64..100) {
        let filtered: Vec<(usize, usize)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        let g = DenseGraph::from_edges(12, &filtered);
        let meter = CostMeter::new();
        let r = max_dom(&g, seed, ExecPolicy::Sequential, &meter);
        prop_assert!(is_maximal_dominator_set(&g, &r.selected));
    }

    /// MaxUDom always returns a maximal U-dominator set on random bipartite graphs.
    #[test]
    fn prop_maxudom_valid(edges in proptest::collection::vec((0usize..10, 0usize..8), 0..40), seed in 0u64..100) {
        let h = BipartiteGraph::from_edges(10, 8, &edges);
        let meter = CostMeter::new();
        let r = max_u_dom(&h, seed, ExecPolicy::Sequential, &meter);
        prop_assert!(is_maximal_u_dominator_set(&h, &r.selected));
    }

    /// Explicit-matrix instances with arbitrary non-negative entries still produce valid
    /// (structurally correct) primal-dual solutions even when the triangle inequality is
    /// violated — only the approximation factor is forfeit, never safety.
    #[test]
    fn prop_non_metric_inputs_do_not_break_structure(
        entries in proptest::collection::vec(0.1f64..100.0, 12),
        costs in proptest::collection::vec(0.1f64..50.0, 4),
    ) {
        let dist = DistanceMatrix::from_rows(3, 4, entries);
        let inst = FlInstance::new(costs, dist);
        let sol = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(0.2));
        prop_assert!(!sol.open.is_empty());
        prop_assert!(sol.assignment.len() == 3);
        prop_assert!(sol.cost.is_finite());
    }
}
