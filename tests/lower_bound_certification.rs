//! Randomized certification of the approximation guarantees.
//!
//! Seeded random small instances (random positive facility costs, random
//! points in a square) are checked, against brute-force optima and exact dual
//! / LP lower bounds, to confirm that every algorithm stays within its proven
//! factor and that the substrate invariants (metric axioms, prefix-sum
//! correctness, dominator-set validity) hold on arbitrary inputs — not just
//! the hand-picked seeds of the unit tests.
//!
//! Formerly written with `proptest`; the offline build environment has no
//! registry access, so the strategies are replaced by explicit ChaCha-seeded
//! generators sweeping the same case counts. Failures print the generating
//! seed, which reproduces the instance exactly.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use parfaclo_core::{greedy, primal_dual, FlConfig};
use parfaclo_dominator::maxdom::{is_maximal_dominator_set, max_dom};
use parfaclo_dominator::maxudom::{is_maximal_u_dominator_set, max_u_dom};
use parfaclo_dominator::{BipartiteGraph, DenseGraph};
use parfaclo_kclustering::{parallel_kcenter, parallel_kmedian, LocalSearchConfig};
use parfaclo_lp::dual;
use parfaclo_matrixops::{ops, scan, CostMeter, ExecPolicy};
use parfaclo_metric::lower_bounds::{self, ClusterObjective};
use parfaclo_metric::{ClusterInstance, DistanceMatrix, FlInstance, Point};

const CASES: u64 = 24;

fn rng_for(case: u64, salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
}

fn random_points(rng: &mut ChaCha8Rng, count: usize) -> Vec<Point> {
    (0..count)
        .map(|_| Point::xy(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
        .collect()
}

/// A small facility-location instance from random 2-D points and costs.
fn small_fl_instance(rng: &mut ChaCha8Rng) -> FlInstance {
    let nc = rng.gen_range(2..7usize);
    let nf = rng.gen_range(2..6usize);
    let clients = random_points(rng, nc);
    let facilities = random_points(rng, nf);
    let costs: Vec<f64> = (0..nf).map(|_| rng.gen_range(0.0..50.0)).collect();
    FlInstance::from_points(costs, clients, facilities)
}

/// A small clustering instance from random 2-D points.
fn small_cluster_instance(rng: &mut ChaCha8Rng) -> ClusterInstance {
    let n = rng.gen_range(3..10usize);
    ClusterInstance::from_points(random_points(rng, n))
}

/// Parallel greedy stays within (3.722 + ε)·opt and its certificate is valid.
#[test]
fn prop_greedy_within_factor() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x6D);
        let inst = small_fl_instance(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let sol = greedy::parallel_greedy(&inst, &cfg);
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(
            sol.cost <= (3.722 + 0.1) * opt + 1e-6,
            "case {case}: cost {} vs opt {opt}",
            sol.cost
        );
        assert!(sol.cost >= opt - 1e-9, "case {case}");
        assert!(sol.lower_bound <= opt + 1e-6, "case {case}");
    }
}

/// Parallel primal-dual stays within (3 + O(ε))·opt and its α is dual feasible.
#[test]
fn prop_primal_dual_within_factor() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x1D);
        let inst = small_fl_instance(&mut rng);
        let seed = rng.gen_range(0..1000u64);
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let sol = primal_dual::parallel_primal_dual(&inst, &cfg);
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(
            sol.cost <= (3.0 + 0.4) * opt + 1e-6,
            "case {case}: cost {} vs opt {opt}",
            sol.cost
        );
        assert!(
            dual::check_alpha_feasible(&inst, &sol.alpha, 1e-6).is_ok(),
            "case {case}"
        );
        assert!(dual::dual_value(&sol.alpha) <= opt + 1e-6, "case {case}");
    }
}

/// Parallel k-center is a 2-approximation on arbitrary point sets.
#[test]
fn prop_kcenter_two_approx() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x2C);
        let inst = small_cluster_instance(&mut rng);
        let k = rng.gen_range(1..4usize).min(inst.n());
        let seed = rng.gen_range(0..100u64);
        let sol = parallel_kcenter(&inst, k, seed, ExecPolicy::Sequential);
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
        assert!(
            sol.radius <= 2.0 * opt + 1e-9,
            "case {case}: radius {} vs opt {opt}",
            sol.radius
        );
    }
}

/// Parallel k-median local search is a (5 + ε)-approximation on arbitrary point sets.
#[test]
fn prop_kmedian_within_factor() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x3E);
        let inst = small_cluster_instance(&mut rng);
        let seed = rng.gen_range(0..100u64);
        let k = 2usize.min(inst.n());
        let sol = parallel_kmedian(&inst, k, &LocalSearchConfig::new(0.1).with_seed(seed));
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KMedian);
        assert!(
            sol.cost <= 5.1 * opt + 1e-6,
            "case {case}: cost {} vs opt {opt}",
            sol.cost
        );
        assert!(sol.cost >= opt - 1e-9, "case {case}");
    }
}

/// Euclidean instances always satisfy the (bipartite) triangle inequality.
#[test]
fn prop_generated_instances_are_metric() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x4A);
        let inst = small_fl_instance(&mut rng);
        assert!(
            parfaclo_metric::validate::check_fl_metric(&inst, 1e-6).is_ok(),
            "case {case}"
        );
    }
}

/// Parallel prefix sums agree with the sequential reference on arbitrary data.
#[test]
fn prop_scan_parallel_matches_sequential() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x5B);
        let len = rng.gen_range(0..300usize);
        let data: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let meter = CostMeter::new();
        for op in [ops::AssocOp::Add, ops::AssocOp::Min, ops::AssocOp::Max] {
            let s = scan::inclusive_scan(&data, op, ExecPolicy::Sequential, &meter);
            let p = scan::inclusive_scan(&data, op, ExecPolicy::Parallel, &meter);
            for (a, b) in s.iter().zip(p.iter()) {
                assert!(
                    a == b || (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                    "case {case}: {a} vs {b}"
                );
            }
        }
    }
}

/// MaxDom always returns a maximal dominator set on random graphs.
#[test]
fn prop_maxdom_valid() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x6C);
        let num_edges = rng.gen_range(0..40usize);
        let edges: Vec<(usize, usize)> = (0..num_edges)
            .map(|_| (rng.gen_range(0..12usize), rng.gen_range(0..12usize)))
            .filter(|(a, b)| a != b)
            .collect();
        let seed = rng.gen_range(0..100u64);
        let g = DenseGraph::from_edges(12, &edges);
        let meter = CostMeter::new();
        let r = max_dom(&g, seed, ExecPolicy::Sequential, &meter);
        assert!(is_maximal_dominator_set(&g, &r.selected), "case {case}");
    }
}

/// MaxUDom always returns a maximal U-dominator set on random bipartite graphs.
#[test]
fn prop_maxudom_valid() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x7D);
        let num_edges = rng.gen_range(0..40usize);
        let edges: Vec<(usize, usize)> = (0..num_edges)
            .map(|_| (rng.gen_range(0..10usize), rng.gen_range(0..8usize)))
            .collect();
        let seed = rng.gen_range(0..100u64);
        let h = BipartiteGraph::from_edges(10, 8, &edges);
        let meter = CostMeter::new();
        let r = max_u_dom(&h, seed, ExecPolicy::Sequential, &meter);
        assert!(is_maximal_u_dominator_set(&h, &r.selected), "case {case}");
    }
}

/// Explicit-matrix instances with arbitrary non-negative entries still produce valid
/// (structurally correct) primal-dual solutions even when the triangle inequality is
/// violated — only the approximation factor is forfeit, never safety.
#[test]
fn prop_non_metric_inputs_do_not_break_structure() {
    for case in 0..CASES {
        let mut rng = rng_for(case, 0x8E);
        let entries: Vec<f64> = (0..12).map(|_| rng.gen_range(0.1..100.0)).collect();
        let costs: Vec<f64> = (0..4).map(|_| rng.gen_range(0.1..50.0)).collect();
        let dist = DistanceMatrix::from_rows(3, 4, entries);
        let inst = FlInstance::new(costs, dist);
        let sol = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(0.2));
        assert!(!sol.open.is_empty(), "case {case}");
        assert_eq!(sol.assignment.len(), 3, "case {case}");
        assert!(sol.cost.is_finite(), "case {case}");
    }
}
