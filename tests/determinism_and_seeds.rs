//! Determinism guarantees: fixed seeds give identical results, execution policy never
//! changes results, and different seeds stay within the approximation envelope.

use parfaclo_core::{greedy, lp_rounding, primal_dual, FlConfig};
use parfaclo_dominator::{max_dom, max_u_dom, BipartiteGraph, DenseGraph};
use parfaclo_kclustering::{parallel_kcenter, parallel_kmedian, LocalSearchConfig};
use parfaclo_lp::solve_facility_lp;
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use parfaclo_metric::gen::{self, GenParams};

#[test]
fn facility_location_algorithms_are_deterministic() {
    let inst = gen::facility_location(GenParams::gaussian_clusters(48, 20, 6).with_seed(13));
    for eps in [0.05, 0.3] {
        let cfg = FlConfig::new(eps).with_seed(99);
        let g1 = greedy::parallel_greedy(&inst, &cfg);
        let g2 = greedy::parallel_greedy(&inst, &cfg);
        assert_eq!(g1.open, g2.open);
        assert_eq!(g1.cost, g2.cost);
        assert_eq!(g1.alpha, g2.alpha);

        let p1 = primal_dual::parallel_primal_dual(&inst, &cfg);
        let p2 = primal_dual::parallel_primal_dual(&inst, &cfg);
        assert_eq!(p1.open, p2.open);
        assert_eq!(p1.rounds, p2.rounds);
    }
}

#[test]
fn policy_does_not_change_results_anywhere() {
    let inst = gen::facility_location(GenParams::uniform_square(40, 20).with_seed(17));
    let cinst = gen::clustering(GenParams::uniform_square(30, 30).with_seed(17));

    let cfg_s = FlConfig::new(0.1)
        .with_seed(4)
        .with_policy(ExecPolicy::Sequential);
    let cfg_p = FlConfig::new(0.1)
        .with_seed(4)
        .with_policy(ExecPolicy::Parallel);
    assert_eq!(
        greedy::parallel_greedy(&inst, &cfg_s).open,
        greedy::parallel_greedy(&inst, &cfg_p).open
    );
    assert_eq!(
        primal_dual::parallel_primal_dual(&inst, &cfg_s).open,
        primal_dual::parallel_primal_dual(&inst, &cfg_p).open
    );

    let kc_s = parallel_kcenter(&cinst, 4, 8, ExecPolicy::Sequential);
    let kc_p = parallel_kcenter(&cinst, 4, 8, ExecPolicy::Parallel);
    assert_eq!(kc_s.centers, kc_p.centers);

    let km_s = parallel_kmedian(
        &cinst,
        4,
        &LocalSearchConfig::new(0.1)
            .with_seed(8)
            .with_policy(ExecPolicy::Sequential),
    );
    let km_p = parallel_kmedian(
        &cinst,
        4,
        &LocalSearchConfig::new(0.1)
            .with_seed(8)
            .with_policy(ExecPolicy::Parallel),
    );
    assert_eq!(km_s.centers, km_p.centers);

    // Dominator-set substrates as well.
    let g = DenseGraph::from_edges(20, &[(0, 1), (2, 3), (4, 5), (1, 2), (6, 7), (8, 9)]);
    let meter = CostMeter::new();
    assert_eq!(
        max_dom(&g, 5, ExecPolicy::Sequential, &meter),
        max_dom(&g, 5, ExecPolicy::Parallel, &meter)
    );
    let h = BipartiteGraph::from_predicate(15, 10, |u, v| (u * 7 + v * 3) % 4 == 0);
    assert_eq!(
        max_u_dom(&h, 5, ExecPolicy::Sequential, &meter),
        max_u_dom(&h, 5, ExecPolicy::Parallel, &meter)
    );
}

#[test]
fn different_seeds_stay_within_guarantees() {
    let inst = gen::facility_location(GenParams::uniform_square(30, 12).with_seed(23));
    let mut costs = Vec::new();
    for seed in 0..8u64 {
        let sol = greedy::parallel_greedy(&inst, &FlConfig::new(0.2).with_seed(seed));
        assert!(sol.cost >= sol.lower_bound - 1e-9);
        costs.push(sol.cost);
    }
    let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = costs.iter().cloned().fold(0.0, f64::max);
    // Randomness may change the solution, but not wildly: all runs are within the
    // worst-case factor of each other.
    assert!(
        max <= 3.722 * 1.44 * min + 1e-6,
        "spread too large: {costs:?}"
    );
}

#[test]
fn lp_rounding_determinism_with_shared_lp_solution() {
    let inst = gen::facility_location(GenParams::uniform_square(10, 6).with_seed(29));
    let lp = solve_facility_lp(&inst).expect("lp");
    let cfg = FlConfig::new(0.15).with_seed(31);
    let a = lp_rounding::parallel_lp_rounding(&inst, &lp, &cfg);
    let b = lp_rounding::parallel_lp_rounding(&inst, &lp, &cfg);
    assert_eq!(a.open, b.open);
    assert_eq!(a.cost, b.cost);
}

#[test]
fn generator_reproducibility_is_end_to_end() {
    // Same params + seed ⇒ same instance ⇒ same solution, across separate generator
    // invocations (no hidden global state anywhere in the stack).
    let params = GenParams::gaussian_clusters(25, 10, 3).with_seed(777);
    let a = gen::facility_location(params);
    let b = gen::facility_location(params);
    let cfg = FlConfig::new(0.1).with_seed(1);
    assert_eq!(
        primal_dual::parallel_primal_dual(&a, &cfg).open,
        primal_dual::parallel_primal_dual(&b, &cfg).open
    );
}

// ---------------------------------------------------------------------------
// Registry-wide conformance: the same guarantees, stated once for *every*
// registered solver through the unified API rather than per-algorithm.
// ---------------------------------------------------------------------------

mod registry_conformance {
    use parfaclo_api::{Backend, ProblemKind, RunConfig};
    use parfaclo_bench::runner::{run_solver, GenSpec};
    use parfaclo_bench::standard_registry;

    /// A workload small enough that even `lp-rounding` (which solves the full
    /// LP relaxation) stays fast.
    fn tiny_spec() -> GenSpec {
        GenSpec::parse("uniform:n=14,nf=7").expect("valid spec")
    }

    fn tiny_cfg() -> RunConfig {
        RunConfig::new(0.1).with_seed(7).with_k(3)
    }

    /// Every registered solver runs on a tiny generated instance and returns
    /// a structurally valid `Run` envelope.
    #[test]
    fn every_registered_solver_produces_a_valid_run() {
        let registry = standard_registry();
        let spec = tiny_spec();
        let cfg = tiny_cfg();
        assert!(registry.len() >= 14, "registry unexpectedly small");
        for name in registry.names() {
            let run = run_solver(&registry, name, &spec, &cfg)
                .unwrap_or_else(|e| panic!("solver '{name}' failed: {e}"));
            run.validate()
                .unwrap_or_else(|e| panic!("solver '{name}' invalid run: {e}"));
            assert_eq!(run.solver, name, "solver name echo mismatch");
            assert_eq!(run.seed, 7, "seed echo mismatch for '{name}'");
            let declared = registry.get(name).unwrap().guarantee();
            assert_eq!(
                run.guarantee, declared,
                "adapter for '{name}' did not stamp its declared guarantee"
            );
            assert!(run.wall_ms >= 0.0);
            // The JSON emission must succeed and carry the shared schema tag.
            assert!(run.to_json().contains(parfaclo_api::RUN_SCHEMA));
        }
    }

    /// Two runs of the same solver with the same seed produce byte-identical
    /// canonical JSON (the full record minus wall time).
    #[test]
    fn every_registered_solver_is_byte_deterministic_per_seed() {
        let registry = standard_registry();
        let spec = tiny_spec();
        let cfg = tiny_cfg();
        for name in registry.names() {
            let a = run_solver(&registry, name, &spec, &cfg).expect(name);
            let b = run_solver(&registry, name, &spec, &cfg).expect(name);
            assert_eq!(
                a.canonical_json(),
                b.canonical_json(),
                "solver '{name}' is not deterministic for a fixed seed"
            );
        }
    }

    /// Thread count must never change any solver's output: the Run JSON at
    /// threads = 1 must be byte-identical to the Run JSON at the maximum
    /// thread count (canonical form, i.e. minus the wall-clock/threads
    /// timing metadata).
    #[test]
    fn every_registered_solver_is_thread_count_invariant() {
        let registry = standard_registry();
        let spec = tiny_spec();
        let cfg = tiny_cfg();
        let max_threads = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .max(4);
        for name in registry.names() {
            let one = run_solver(&registry, name, &spec, &cfg.clone().with_threads(1)).expect(name);
            let many = run_solver(
                &registry,
                name,
                &spec,
                &cfg.clone().with_threads(max_threads),
            )
            .expect(name);
            assert_eq!(one.threads, 1, "thread stamp for '{name}'");
            assert_eq!(many.threads, max_threads, "thread stamp for '{name}'");
            assert_eq!(
                one.canonical_json(),
                many.canonical_json(),
                "solver '{name}' output depends on the thread count"
            );
        }
    }

    /// The same byte-for-byte guarantee on instances big enough to actually
    /// cross the parallel threshold (m >= 2048), for every solver that is
    /// cheap enough to run at that size (lp-rounding solves a full LP and is
    /// covered at the tiny size above).
    #[test]
    fn thread_count_invariance_holds_on_parallel_sized_instances() {
        let registry = standard_registry();
        let spec = GenSpec::parse("clustered:n=80,nf=40,c=5").expect("valid spec");
        let cfg = RunConfig::new(0.15).with_seed(11).with_k(5);
        for name in registry.names() {
            if name == "lp-rounding" {
                continue;
            }
            let one = run_solver(&registry, name, &spec, &cfg.clone().with_threads(1)).expect(name);
            let four =
                run_solver(&registry, name, &spec, &cfg.clone().with_threads(4)).expect(name);
            assert_eq!(
                one.canonical_json(),
                four.canonical_json(),
                "solver '{name}' output depends on the thread count at parallel sizes"
            );
        }
    }

    /// The distance backend must never change any solver's output: for every
    /// registered solver, on two instance sizes and two seeds, the canonical
    /// Run JSON produced from an implicit- or spatial-backend instance is
    /// byte-identical to the dense-backend run — while the reported oracle
    /// memory stays `O(n)` (points, plus index structure for spatial)
    /// instead of the `O(n²)` matrix.
    #[test]
    fn every_registered_solver_is_backend_invariant_byte_for_byte() {
        let registry = standard_registry();
        for spec_str in ["uniform:n=14,nf=7", "clustered:n=26,nf=10,c=4"] {
            let spec = GenSpec::parse(spec_str).expect("valid spec");
            for seed in [7u64, 23] {
                let cfg = RunConfig::new(0.1).with_seed(seed).with_k(3);
                for name in registry.names() {
                    let dense = run_solver(&registry, name, &spec, &cfg).expect(name);
                    assert_eq!(dense.backend, Backend::Dense);
                    assert_eq!(
                        dense.memory_bytes,
                        (dense.m * 8) as u64,
                        "solver '{name}': dense oracle must report the matrix size"
                    );
                    for backend in [Backend::Implicit, Backend::Spatial] {
                        let other =
                            run_solver(&registry, name, &spec, &cfg.clone().with_backend(backend))
                                .expect(name);
                        assert_eq!(
                            dense.canonical_json(),
                            other.canonical_json(),
                            "solver '{name}' output differs between dense and {backend} \
                             (spec {spec_str}, seed {seed})"
                        );
                        assert_eq!(other.backend, backend);
                        // Point-backed memory is O(points): a generous 64
                        // bytes per point covers coords + Point/Vec headers
                        // (spatial adds index arrays, also O(points) — budget
                        // 64 more), independent of n².
                        let points = (dense.n + spec.nf) as u64;
                        let budget = match backend {
                            Backend::Spatial => points * 128,
                            _ => points * 64,
                        };
                        assert!(
                            other.memory_bytes <= budget,
                            "solver '{name}': {backend} oracle ({} bytes) is not \
                             O(|C| + |F|) for {points} points",
                            other.memory_bytes
                        );
                    }
                }
            }
        }
    }

    /// The execution policy must never change any solver's output.
    #[test]
    fn every_registered_solver_is_policy_invariant() {
        use parfaclo_matrixops::ExecPolicy;
        let registry = standard_registry();
        let spec = tiny_spec();
        for name in registry.names() {
            let seq = run_solver(
                &registry,
                name,
                &spec,
                &tiny_cfg().with_policy(ExecPolicy::Sequential),
            )
            .expect(name);
            let par = run_solver(
                &registry,
                name,
                &spec,
                &tiny_cfg().with_policy(ExecPolicy::Parallel),
            )
            .expect(name);
            assert_eq!(
                seq.selected, par.selected,
                "solver '{name}' policy-sensitive"
            );
            assert_eq!(seq.cost, par.cost, "solver '{name}' policy-sensitive cost");
        }
    }

    /// Certified lower bounds really are lower bounds: for every pair of
    /// facility-location solvers, each solver's cost dominates every other
    /// solver's certificate on the same instance.
    #[test]
    fn certificates_are_mutually_consistent_across_solvers() {
        let registry = standard_registry();
        let spec = tiny_spec();
        let cfg = tiny_cfg();
        let runs: Vec<_> = registry
            .names()
            .iter()
            .filter(|name| registry.get(name).unwrap().problem() == ProblemKind::FacilityLocation)
            .map(|name| run_solver(&registry, name, &spec, &cfg).expect(name))
            .collect();
        assert!(runs.len() >= 5);
        for a in &runs {
            for b in &runs {
                assert!(
                    a.cost >= b.lower_bound - 1e-6,
                    "{} cost {} below {}'s certificate {}",
                    a.solver,
                    a.cost,
                    b.solver,
                    b.lower_bound
                );
            }
        }
    }
}
