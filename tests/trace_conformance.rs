//! Trace-determinism conformance: the canonical projection of a traced run
//! (span topology, per-span round deltas, round events) must be a pure
//! function of the workload — byte-identical across distance backends,
//! event engines, and thread counts. Wall-clock and work profiles may
//! differ (the scan and bucket engines legitimately charge different
//! element-op counts); none of that rides in the canonical trace.

use parfaclo_api::{Backend, EventEngine, RunConfig};
use parfaclo_bench::runner::{run_solver, GenSpec};
use parfaclo_bench::standard_registry;
use parfaclo_trace::{install, TraceDetail, Tracer};
use std::sync::Arc;

/// Runs one solver under a fresh rounds-level tracer and returns the
/// canonical trace alongside the run (the tracer is ambient, so the
/// registry wrapper parents every solver phase under its root span).
fn canonical_trace(solver: &str, spec: &GenSpec, cfg: &RunConfig) -> String {
    let registry = standard_registry();
    let tracer = Arc::new(Tracer::new(TraceDetail::Rounds));
    let guard = install(Arc::clone(&tracer));
    let run = run_solver(&registry, solver, spec, cfg).expect("solver feasible");
    drop(guard);
    assert!(
        !run.phase_wall_ms.is_empty(),
        "{solver}: every traced run must attribute phase walls"
    );
    tracer.canonical_json()
}

fn spec() -> GenSpec {
    GenSpec::parse("uniform:n=200,nf=48").expect("valid spec")
}

fn base_cfg(seed: u64) -> RunConfig {
    RunConfig::new(0.1).with_seed(seed).with_k(4)
}

/// The cross-product each solver's canonical trace must be constant over.
fn variants(seed: u64) -> Vec<(String, RunConfig)> {
    let mut out = Vec::new();
    for backend in [Backend::Dense, Backend::Implicit, Backend::Spatial] {
        for threads in [1usize, 4] {
            out.push((
                format!("backend={backend:?},threads={threads}"),
                base_cfg(seed).with_backend(backend).with_threads(threads),
            ));
        }
    }
    for engine in [EventEngine::Scan, EventEngine::Bucket] {
        out.push((
            format!("engine={engine:?}"),
            base_cfg(seed).with_engine(engine),
        ));
    }
    out
}

#[test]
fn canonical_trace_is_backend_engine_and_thread_invariant() {
    for solver in ["greedy", "primal-dual", "kcenter"] {
        for seed in [1u64, 9] {
            let sp = spec();
            let mut reference: Option<(String, String)> = None;
            for (label, cfg) in variants(seed) {
                let canonical = canonical_trace(solver, &sp, &cfg);
                match &reference {
                    None => {
                        assert!(
                            canonical.contains("\"events\":[{"),
                            "{solver} seed {seed}: rounds-level trace must carry \
                             round events: {canonical}"
                        );
                        reference = Some((label, canonical));
                    }
                    Some((ref_label, ref_canonical)) => assert_eq!(
                        &canonical, ref_canonical,
                        "{solver} seed {seed}: canonical trace differs between \
                         {ref_label} and {label}"
                    ),
                }
            }
        }
    }
}

#[test]
fn canonical_trace_is_workload_sensitive() {
    // The invariance above would hold trivially for an empty trace; distinct
    // seeds must produce distinct canonical traces (different round/frontier
    // progressions), proving the projection actually observes the workload.
    let sp = spec();
    let a = canonical_trace("greedy", &sp, &base_cfg(1));
    let b = canonical_trace("greedy", &sp, &base_cfg(9));
    assert_ne!(a, b, "canonical trace must depend on the workload");
}

#[test]
fn greedy_trace_names_its_published_phases() {
    let canonical = canonical_trace("greedy", &spec(), &base_cfg(1));
    for phase in ["solve:greedy", "orders-build", "star-rounds", "finalize"] {
        assert!(
            canonical.contains(&format!("\"name\":\"{phase}\"")),
            "missing phase '{phase}' in {canonical}"
        );
    }
}
