//! Relationships that must hold *between* algorithms and substrates.

use parfaclo_core::{greedy, primal_dual, verify, FlConfig};
use parfaclo_lp::{dual, solve_facility_lp};
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_metric::lower_bounds;
use parfaclo_seq_baselines::{jain_vazirani, jms_greedy};

/// Weak duality chain on small instances:
/// every dual-feasible value ≤ LP value ≤ integral optimum ≤ every algorithm's cost.
#[test]
fn weak_duality_chain() {
    for seed in 0..4u64 {
        let inst = gen::facility_location(GenParams::uniform_square(9, 5).with_seed(seed));
        let cfg = FlConfig::new(0.1).with_seed(seed);

        let lp = solve_facility_lp(&inst).expect("lp");
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        let jv = jain_vazirani(&inst);
        let jv_dual: f64 = jv.alpha.iter().sum();
        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        let g = greedy::parallel_greedy(&inst, &cfg);

        // Lower bounds below the optimum.
        assert!(jv_dual <= lp.value() + 1e-6, "seed {seed}");
        assert!(pd.lower_bound <= lp.value() + 1e-6, "seed {seed}");
        assert!(g.lower_bound <= opt + 1e-6, "seed {seed}");
        assert!(lp.value() <= opt + 1e-6, "seed {seed}");
        assert!(inst.gamma() <= opt + 1e-6, "seed {seed}");

        // Costs above the optimum.
        for cost in [jv.cost, pd.cost, g.cost, jms_greedy(&inst).cost] {
            assert!(cost >= opt - 1e-9, "seed {seed}");
            assert!(cost <= inst.gamma_sum() + 1e-6, "seed {seed}");
        }
    }
}

/// The α certificates produced by the parallel primal-dual algorithm and the sequential
/// Jain–Vazirani simulation are both dual feasible and within a (1+ε) scale of each
/// other in total value.
#[test]
fn dual_certificates_are_consistent() {
    for seed in 0..4u64 {
        let inst = gen::facility_location(GenParams::gaussian_clusters(16, 8, 4).with_seed(seed));
        let pd = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(0.05).with_seed(seed));
        let jv = jain_vazirani(&inst);
        assert!(dual::check_alpha_feasible(&inst, &pd.alpha, 1e-6).is_ok());
        assert!(dual::check_alpha_feasible(&inst, &jv.alpha, 1e-6).is_ok());
        let pd_val = dual::dual_value(&pd.alpha);
        let jv_val = dual::dual_value(&jv.alpha);
        // The geometric discretisation loses at most roughly a (1+ε)² factor per client
        // relative to the exact continuous process; allow a generous constant.
        assert!(
            pd_val <= 1.3 * jv_val + 1e-6 && jv_val <= 1.3 * pd_val + 1e-6,
            "seed {seed}: parallel dual {pd_val} vs sequential dual {jv_val}"
        );
    }
}

/// `verify::instance_lower_bound` and `verify::certified_ratio` glue the pieces
/// together: for the primal-dual algorithm the certified ratio never exceeds 3 + O(ε).
#[test]
fn certified_ratios_respect_guarantees() {
    for seed in 0..4u64 {
        let inst = gen::facility_location(GenParams::uniform_square(14, 7).with_seed(seed));
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        let lb = verify::instance_lower_bound(&inst, 10_000);
        let ratio = verify::certified_ratio(&inst, &pd, lb.best()).expect("certificate");
        assert!(
            ratio <= 3.0 + 0.35,
            "seed {seed}: certified primal-dual ratio {ratio}"
        );
        let g = greedy::parallel_greedy(&inst, &cfg);
        let gratio = verify::certified_ratio(&inst, &g, lb.best()).expect("certificate");
        assert!(
            gratio <= 3.722 + 0.4,
            "seed {seed}: certified greedy ratio {gratio}"
        );
    }
}

/// The γ bound of Equation (2) brackets every solution cost:
/// γ ≤ opt ≤ cost ≤ Σ_j γ_j is NOT generally true for cost (a bad solution could exceed
/// Σγ), but for all our approximation algorithms cost ≤ factor·opt ≤ factor·Σγ holds;
/// check the instrumented version.
#[test]
fn gamma_bounds_bracket_algorithm_costs() {
    for seed in 0..4u64 {
        let inst = gen::facility_location(GenParams::line(20, 10).with_seed(seed));
        let bounds = lower_bounds::gamma_bounds(&inst);
        let cfg = FlConfig::new(0.1).with_seed(seed);
        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        assert!(bounds.lower <= pd.cost + 1e-9);
        assert!(pd.cost <= 3.5 * bounds.upper + 1e-6);
    }
}

/// Work accounting sanity: the parallel primal-dual does `O(m)` work per round, so its
/// recorded element operations are at most a small constant times `m × rounds` (plus the
/// post-processing term), and greedy's sort accounting pins each event engine's shape —
/// the scan engine presorts every column exactly once up front, while the bucket engine
/// replaces that single O(m log m) presort with many small lazy prefix expansions.
#[test]
fn work_accounting_is_plausible() {
    use parfaclo_api::EventEngine;

    let inst = gen::facility_location(GenParams::uniform_square(64, 32).with_seed(2));
    let cfg = FlConfig::new(0.1).with_seed(2);
    let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
    let m = inst.m() as u64;
    let per_round_budget = 8 * m;
    assert!(
        pd.work.element_ops <= per_round_budget * (pd.rounds as u64 + pd.inner_rounds as u64 + 4),
        "primal-dual element ops {} exceed budget",
        pd.work.element_ops
    );

    let scan = greedy::parallel_greedy(&inst, &cfg.with_engine(EventEngine::Scan));
    assert_eq!(scan.work.sort_calls, 1, "scan greedy presorts exactly once");

    let bucket = greedy::parallel_greedy(&inst, &cfg.with_engine(EventEngine::Bucket));
    assert!(
        bucket.work.sort_calls > 1,
        "bucket greedy expands lazily: many small sorts, never one full presort (got {})",
        bucket.work.sort_calls
    );
    assert_eq!(scan.cost.to_bits(), bucket.cost.to_bits());
}
