//! Cross-crate integration tests for the `parfaclo` workspace.
//!
//! The actual tests live in the sibling `*.rs` files declared as `[[test]]` targets:
//!
//! * `pipeline_facility_location` — end-to-end pipelines: generate → solve with every
//!   facility-location algorithm → verify structure and guarantees.
//! * `pipeline_kclustering` — the same for k-center / k-median / k-means.
//! * `cross_algorithm_consistency` — relationships that must hold *between* algorithms
//!   (every cost ≥ every certified lower bound, parallel vs sequential factors, ...).
//! * `determinism_and_seeds` — fixed seeds give identical output; execution policy
//!   (sequential vs rayon) never changes results; plus the registry conformance
//!   suite: every solver in `parfaclo_bench::standard_registry()` produces a
//!   structurally valid `Run`, is byte-deterministic per seed, and respects the
//!   other solvers' certified lower bounds.
//! * `lower_bound_certification` — seeded randomized tests asserting the
//!   approximation guarantees against brute-force optima on random tiny instances.
