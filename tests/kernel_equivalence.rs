//! The blocked SoA kernels are bit-identical to the scalar distance path.
//!
//! This is the contract that lets every oracle backend route its batch
//! queries through `parfaclo_kernel::block` without changing a single output
//! byte: for any dimension, any [`DistanceKind`], any tile-boundary length
//! and any tie structure, each blocked kernel produces exactly the bits the
//! scalar reference loop produces. The suite exercises the kernels directly
//! (property tests over awkward shapes), the oracle batch entry points that
//! wrap them, and finally the whole registry at sizes that cross multiple
//! tile boundaries.

use parfaclo_kernel::{block, DistanceKind, SoaPoints};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const ALL_KINDS: [DistanceKind; 4] = [
    DistanceKind::Euclidean,
    DistanceKind::SquaredEuclidean,
    DistanceKind::Manhattan,
    DistanceKind::Chebyshev,
];

/// Sizes straddling the tile boundary: one short of a tile, exactly one
/// tile, one past it, and a multi-tile length with a ragged tail.
const SIZES: [usize; 4] = [
    block::TILE - 1,
    block::TILE,
    block::TILE + 1,
    2 * block::TILE + 3,
];

const DIMS: [usize; 4] = [1, 2, 3, 10];

/// Row-major coordinates with deliberately awkward structure: duplicated
/// points (exact bitwise copies) and pairs placed symmetrically around the
/// query so their distances tie bit-for-bit.
fn awkward_coords(rng: &mut ChaCha8Rng, n: usize, dim: usize, q: &[f64]) -> Vec<f64> {
    let mut coords: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-8.0..8.0)).collect();
    if n >= 8 {
        // Exact duplicates at tile-internal and tile-final positions.
        let (src, dup_a, dup_b) = (3, 7, n - 1);
        for d in 0..dim {
            coords[dup_a * dim + d] = coords[src * dim + d];
            coords[dup_b * dim + d] = coords[src * dim + d];
        }
        // A mirrored pair: q + e and q - e have bitwise-equal distances to q
        // under every kind (squaring/abs make the displacement sign vanish).
        for d in 0..dim {
            let e = coords[5 * dim + d] - q[d];
            coords[5 * dim + d] = q[d] + e;
            coords[6 * dim + d] = q[d] - e;
        }
        // One point exactly at the query (zero distance).
        coords[4 * dim..(4 + 1) * dim].copy_from_slice(q);
    }
    coords
}

fn point(coords: &[f64], dim: usize, i: usize) -> &[f64] {
    &coords[i * dim..(i + 1) * dim]
}

#[test]
fn blocked_kernels_bit_equal_scalar_at_tile_boundaries() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for &dim in &DIMS {
        for &n in &SIZES {
            let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-8.0..8.0)).collect();
            let coords = awkward_coords(&mut rng, n, dim, &q);
            let pts = SoaPoints::from_flat(&coords, dim, n);
            for kind in ALL_KINDS {
                let scalar: Vec<f64> = (0..n)
                    .map(|i| kind.distance(&q, point(&coords, dim, i)))
                    .collect();

                // dist_range over the whole range, and over an unaligned
                // sub-range starting inside a tile.
                let mut out = vec![0.0; n];
                block::dist_range(kind, &q, &pts, 0, &mut out);
                for i in 0..n {
                    assert_eq!(
                        out[i].to_bits(),
                        scalar[i].to_bits(),
                        "dist_range dim {dim} n {n} {kind:?} slot {i}"
                    );
                }
                let (sub_start, sub_len) = (n / 3, n - n / 3 - 1);
                let mut sub = vec![0.0; sub_len];
                block::dist_range(kind, &q, &pts, sub_start, &mut sub);
                for i in 0..sub_len {
                    assert_eq!(sub[i].to_bits(), scalar[sub_start + i].to_bits());
                }

                // dist_gather over a scrambled index set (stride walk hits
                // every residue, including the duplicated slots).
                let idxs: Vec<u32> = (0..n as u32).map(|i| (i * 7) % n as u32).collect();
                let mut gathered = vec![0.0; n];
                block::dist_gather(kind, &q, &pts, &idxs, &mut gathered);
                for (j, &i) in idxs.iter().enumerate() {
                    assert_eq!(gathered[j].to_bits(), scalar[i as usize].to_bits());
                }

                // argmin_range ties to the lowest position (strict < scan).
                let (pos, d) = block::argmin_range(kind, &q, &pts, 0, n).expect("non-empty");
                let mut ref_pos = 0;
                for (i, &s) in scalar.iter().enumerate() {
                    if s < scalar[ref_pos] {
                        ref_pos = i;
                    }
                }
                assert_eq!(pos, ref_pos, "argmin dim {dim} n {n} {kind:?}");
                assert_eq!(d.to_bits(), scalar[ref_pos].to_bits());

                // argmin_ids ties to the lowest id under equal distance.
                let ids: Vec<u32> = (0..n as u32).rev().collect();
                let sub_pts = pts.gather(&ids);
                let (best_id, best_d) =
                    block::argmin_ids(kind, &q, &sub_pts, &ids).expect("non-empty");
                let (ref_id, ref_d) = ids
                    .iter()
                    .map(|&id| (id, scalar[id as usize]))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .unwrap();
                assert_eq!(best_id, ref_id);
                assert_eq!(best_d.to_bits(), ref_d.to_bits());

                // Range predicates at a radius that is itself a produced
                // distance, so the mirrored pair sits exactly on the edge.
                let radius = scalar[if n >= 8 { 5 } else { 0 }];
                let mut within = Vec::new();
                block::collect_within(kind, &q, &pts, 0, n, radius, &mut within);
                let ref_within: Vec<usize> = (0..n).filter(|&i| scalar[i] <= radius).collect();
                assert_eq!(within, ref_within, "collect dim {dim} n {n} {kind:?}");
                assert_eq!(
                    block::count_within(kind, &q, &pts, 0, n, radius),
                    ref_within.len()
                );

                // Exact reductions: max, min-positive, ordered sum.
                let max = block::max_in_range(kind, &q, &pts, 0, n);
                let ref_max = scalar.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
                assert_eq!(max.to_bits(), ref_max.to_bits());
                let minp = block::min_positive_in_range(kind, &q, &pts, 0, n);
                let ref_minp = scalar
                    .iter()
                    .filter(|&&d| d > 0.0)
                    .fold(None, |acc: Option<f64>, &d| {
                        Some(acc.map_or(d, |a| a.min(d)))
                    });
                assert_eq!(minp.map(f64::to_bits), ref_minp.map(f64::to_bits));
                let sum = block::sum_gather(kind, &q, &pts, &idxs);
                let ref_sum = idxs.iter().fold(0.0f64, |acc, &i| acc + scalar[i as usize]);
                assert_eq!(
                    sum.to_bits(),
                    ref_sum.to_bits(),
                    "sum dim {dim} n {n} {kind:?}"
                );
            }
        }
    }
}

#[test]
fn oracle_batch_entry_points_bit_equal_scalar_dist() {
    use parfaclo_metric::{DistanceOracle, ImplicitMetric, Point};
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let dim = 3;
    let (nf, nc) = (block::TILE + 3, 2 * block::TILE + 3);
    let mk = |n: usize, rng: &mut ChaCha8Rng| -> Vec<Point> {
        (0..n)
            .map(|_| Point::new((0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect()))
            .collect()
    };
    for kind in ALL_KINDS {
        let oracle = ImplicitMetric::between(mk(nf, &mut rng), mk(nc, &mut rng), kind);
        assert!(oracle.has_batch_distance_kernels());
        let scalar: Vec<Vec<f64>> = (0..nf)
            .map(|i| (0..nc).map(|j| oracle.dist(i, j)).collect())
            .collect();

        let mut row = vec![0.0; nc - 5];
        oracle.row_range_into(2, 5, &mut row);
        for (o, &d) in row.iter().enumerate() {
            assert_eq!(d.to_bits(), scalar[2][5 + o].to_bits(), "{kind:?} row");
        }
        let mut col = vec![0.0; nf];
        oracle.col_range_into(9, 0, &mut col);
        for (i, &d) in col.iter().enumerate() {
            assert_eq!(d.to_bits(), scalar[i][9].to_bits(), "{kind:?} col");
        }
        let cols: Vec<usize> = (0..nc).step_by(3).collect();
        let mut g = vec![0.0; cols.len()];
        oracle.row_gather(1, &cols, &mut g);
        for (o, &j) in cols.iter().enumerate() {
            assert_eq!(g[o].to_bits(), scalar[1][j].to_bits(), "{kind:?} rgather");
        }
        let rows: Vec<usize> = (0..nf).rev().step_by(2).collect();
        let mut h = vec![0.0; rows.len()];
        oracle.col_gather(4, &rows, &mut h);
        for (o, &i) in rows.iter().enumerate() {
            assert_eq!(h[o].to_bits(), scalar[i][4].to_bits(), "{kind:?} cgather");
        }
    }
}

/// The whole registry, at sizes where every batch scan crosses multiple
/// tile boundaries (`|C| > 2·TILE`, `|F| > TILE`): dense, implicit and
/// spatial backends must produce byte-identical canonical records.
#[test]
fn registry_output_is_backend_invariant_at_tile_crossing_sizes() {
    use parfaclo_api::{Backend, RunConfig};
    use parfaclo_bench::runner::{run_solver, GenSpec};
    use parfaclo_bench::standard_registry;

    let registry = standard_registry();
    for spec_str in ["uniform:n=131,nf=66", "clustered:n=140,nf=70,c=5"] {
        let spec = GenSpec::parse(spec_str).expect("valid spec");
        for seed in [3u64, 19] {
            let cfg = RunConfig::new(0.15).with_seed(seed).with_k(5);
            for name in registry.names() {
                // lp-rounding solves a full LP; its backend invariance is
                // covered at small sizes in determinism_and_seeds.
                if name == "lp-rounding" {
                    continue;
                }
                let dense = run_solver(&registry, name, &spec, &cfg).expect(name);
                for backend in [Backend::Implicit, Backend::Spatial] {
                    let other =
                        run_solver(&registry, name, &spec, &cfg.clone().with_backend(backend))
                            .expect(name);
                    assert_eq!(
                        dense.canonical_json(),
                        other.canonical_json(),
                        "solver '{name}' output differs between dense and {backend} \
                         (spec {spec_str}, seed {seed})"
                    );
                }
            }
        }
    }
}
