//! End-to-end test of the measurement subsystem: the bench matrix runner,
//! the `parfaclo.bench.v2` artifact, and the baseline comparator — the exact
//! code path the CI `perf-smoke` job drives through the `parfaclo bench`
//! CLI.

use parfaclo_api::{Backend, Coreset, GraphBackend, RunConfig};
use parfaclo_bench::bench::{compare, run_matrix, BenchArtifact, BenchMatrix, BENCH_V2_SCHEMA};
use parfaclo_bench::standard_registry;

fn smoke_matrix() -> BenchMatrix {
    BenchMatrix {
        solvers: vec!["greedy".to_string(), "kcenter".to_string()],
        workloads: vec!["uniform".to_string(), "clustered".to_string()],
        n: 32,
        nf: 16,
        backends: vec![Backend::Dense, Backend::Implicit],
        // One graph representation keeps the cell pairing below exact;
        // the graph axis has its own dedicated coverage in the bench crate
        // and in graph_engine.rs.
        graphs: vec![GraphBackend::Dense],
        // Likewise for the coreset axis: its dedicated coverage lives in the
        // bench crate and in coreset_conformance.rs.
        coresets: vec![Coreset::Off],
        threads: vec![1, 4],
        warmup: 1,
        trials: 2,
    }
}

fn smoke_config() -> RunConfig {
    RunConfig::new(0.1).with_seed(7).with_k(4)
}

#[test]
fn matrix_to_artifact_to_comparator_round_trip() {
    let registry = standard_registry();
    let matrix = smoke_matrix();
    let (artifact, runs) = run_matrix(&registry, &matrix, &smoke_config()).expect("matrix runs");

    // Every cell measured, every cell byte-deterministic across trials.
    assert_eq!(artifact.records.len(), 2 * 2 * 2 * 2);
    assert_eq!(runs.len(), artifact.records.len());
    for rec in &artifact.records {
        assert!(rec.deterministic, "{} violated determinism", rec.key());
        assert_eq!(rec.stats.trials, 2);
        assert!(rec.memory_bytes > 0);
    }
    // Implicit cells must report less distance-storage memory than dense
    // ones for the same (solver, workload, threads).
    for dense in artifact
        .records
        .iter()
        .filter(|r| r.backend == Backend::Dense)
    {
        let implicit = artifact
            .records
            .iter()
            .find(|r| {
                r.backend == Backend::Implicit
                    && r.solver == dense.solver
                    && r.workload == dense.workload
                    && r.threads == dense.threads
            })
            .expect("matching implicit cell");
        assert!(
            implicit.memory_bytes < dense.memory_bytes,
            "{}: implicit {} >= dense {}",
            dense.key(),
            implicit.memory_bytes,
            dense.memory_bytes
        );
        // Work charges are backend-invariant (same algorithm, same meter).
        assert_eq!(implicit.work.element_ops, dense.work.element_ops);
    }

    // Serialise → parse is the identity, and the text carries the schema
    // tag plus the machine fingerprint.
    let text = artifact.to_json();
    assert!(text.contains(BENCH_V2_SCHEMA));
    assert!(text.contains("\"machine\""));
    let parsed = BenchArtifact::parse(&text).expect("artifact parses");
    assert_eq!(parsed, artifact);

    // Self-comparison joins every cell, finds no regressions at any
    // threshold, and has a geomean of exactly 1.
    let report = compare(&parsed, &artifact).unwrap();
    assert_eq!(report.rows.len(), artifact.records.len());
    assert!(report.missing.is_empty() && report.added.is_empty());
    assert!(report.regressions(0.0).is_empty());
    assert!((report.geomean_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn regressions_are_caught_and_subsets_compare_cleanly() {
    let registry = standard_registry();
    let mut matrix = smoke_matrix();
    matrix.backends = vec![Backend::Dense];
    matrix.threads = vec![1];
    let (baseline, _) = run_matrix(&registry, &matrix, &smoke_config()).expect("baseline runs");

    // A 10x-slower clone of one cell must trip the generous CI threshold.
    let mut slow = baseline.clone();
    slow.records[0].stats.median_ms = baseline.records[0].stats.median_ms.max(0.001) * 10.0;
    let report = compare(&baseline, &slow).unwrap();
    let regressions = report.regressions(300.0);
    assert_eq!(regressions.len(), 1);
    assert_eq!(regressions[0].key, baseline.records[0].key());

    // A narrower re-measurement (solver subset) joins only its own cells;
    // the baseline's extra cells are reported missing, never regressed.
    let mut narrow = matrix.clone();
    narrow.solvers = vec!["greedy".to_string()];
    let (current, _) = run_matrix(&registry, &narrow, &smoke_config()).expect("subset runs");
    let report = compare(&baseline, &current).unwrap();
    assert_eq!(report.rows.len(), current.records.len());
    assert_eq!(
        report.missing.len(),
        baseline.records.len() - current.records.len()
    );
    assert!(report.added.is_empty());
}

#[test]
fn repeated_matrices_agree_on_everything_but_wall_clock() {
    let registry = standard_registry();
    let mut matrix = smoke_matrix();
    matrix.workloads = vec!["uniform".to_string()];
    matrix.backends = vec![Backend::Dense];
    let (a, runs_a) = run_matrix(&registry, &matrix, &smoke_config()).expect("first run");
    let (b, runs_b) = run_matrix(&registry, &matrix, &smoke_config()).expect("second run");
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.key(), rb.key());
        assert_eq!(ra.work, rb.work, "{}: meter charges drifted", ra.key());
        assert_eq!(ra.memory_bytes, rb.memory_bytes);
    }
    // The canonical run records — results, not timing — are byte-identical
    // across whole matrix invocations.
    for (ra, rb) in runs_a.iter().zip(&runs_b) {
        assert_eq!(ra.canonical_json(), rb.canonical_json());
        // While the full records carry the trial statistics block.
        assert!(ra.to_json().contains("\"trials\""));
    }
}
