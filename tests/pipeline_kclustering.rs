//! End-to-end k-clustering pipelines across the whole workspace.

use parfaclo_kclustering::{
    parallel_kcenter, parallel_kmeans, parallel_kmedian, LocalSearchConfig,
};
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::gen::{self, standard_suite, GenParams};
use parfaclo_metric::lower_bounds::{kcenter_lower_bound, kmedian_lower_bound};
use parfaclo_seq_baselines::{gonzalez_kcenter, local_search_kmedian};

/// The parallel k-center algorithm respects the factor-2 guarantee (against the
/// combinatorial lower bound) on every workload of the standard suite.
#[test]
fn kcenter_two_approximation_across_suite() {
    for wl in standard_suite(40, 40, 21) {
        let inst = gen::clustering(wl.params);
        for k in [2usize, 5] {
            let sol = parallel_kcenter(&inst, k, 1, ExecPolicy::Parallel);
            let lb = kcenter_lower_bound(&inst, k);
            assert!(
                sol.radius <= 2.0 * (2.0 * lb) + 1e-9 || lb == 0.0,
                "{} k={k}: radius {} vs lower bound {lb}",
                wl.name,
                sol.radius
            );
            assert!(sol.centers.len() <= k);
            // Every center index is a valid node.
            assert!(sol.centers.iter().all(|&c| c < inst.n()));
        }
    }
}

/// k-median local search always produces k distinct centers, costs above the lower
/// bound, and never does worse than its own initialisation.
#[test]
fn kmedian_pipeline_across_suite() {
    for wl in standard_suite(36, 36, 33) {
        let inst = gen::clustering(wl.params);
        let sol = parallel_kmedian(&inst, 4, &LocalSearchConfig::new(0.1).with_seed(2));
        assert_eq!(sol.centers.len(), 4, "{}", wl.name);
        let mut dedup = sol.centers.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "{}: duplicate centers", wl.name);
        let lb = kmedian_lower_bound(&inst, 4);
        assert!(sol.cost >= lb - 1e-9, "{}", wl.name);
        assert!(sol.cost <= sol.initial_cost + 1e-9, "{}", wl.name);
        // The reported cost matches re-evaluating the objective.
        assert!((inst.kmedian_cost(&sol.centers) - sol.cost).abs() < 1e-6);
    }
}

/// k-means cost relates to k-median cost as squared vs plain distances suggest, and the
/// reported costs are consistent with the instance evaluation.
#[test]
fn kmeans_and_kmedian_consistency() {
    let inst = gen::clustering(GenParams::gaussian_clusters(50, 50, 5).with_seed(4));
    let cfg = LocalSearchConfig::new(0.1).with_seed(4);
    let med = parallel_kmedian(&inst, 5, &cfg);
    let means = parallel_kmeans(&inst, 5, &cfg);
    assert!((inst.kmeans_cost(&means.centers) - means.cost).abs() < 1e-6);
    assert!((inst.kmedian_cost(&med.centers) - med.cost).abs() < 1e-6);
    // On this clustered instance both should find solutions that beat one-cluster
    // baselines by a wide margin.
    let single_med = inst.kmedian_cost(&[0]);
    assert!(med.cost < single_med);
}

/// Parallel and sequential implementations land in the same quality regime.
#[test]
fn parallel_vs_sequential_clustering_quality() {
    let inst = gen::clustering(GenParams::uniform_square(30, 30).with_seed(6));
    let k = 4;
    let par_c = parallel_kcenter(&inst, k, 9, ExecPolicy::Sequential);
    let seq_c = gonzalez_kcenter(&inst, k);
    assert!(par_c.radius <= 2.0 * seq_c.radius + 1e-9);
    assert!(seq_c.radius <= 2.0 * par_c.radius + 1e-9);

    let par_m = parallel_kmedian(&inst, k, &LocalSearchConfig::new(0.1).with_seed(9));
    let seq_m = local_search_kmedian(&inst, k, 0.1);
    assert!(par_m.cost <= 5.1 * seq_m.cost + 1e-6);
    assert!(seq_m.cost <= 5.1 * par_m.cost + 1e-6);
}

/// The clustering instances produced by the generator suite are genuine metrics, so the
/// algorithms' guarantees actually apply (spot-check with the O(n³) validator).
#[test]
fn suite_instances_are_metrics() {
    for wl in standard_suite(18, 18, 44) {
        let inst = gen::clustering(wl.params);
        assert!(
            parfaclo_metric::validate::check_cluster_metric(&inst, 1e-6).is_ok(),
            "{} violates the metric axioms",
            wl.name
        );
    }
}
