//! Conformance tests for the sparse frontier graph engine: every solver
//! that walks a threshold graph must produce the **byte-identical**
//! canonical Run JSON whether the graph is the dense adjacency matrix or
//! the CSR sparse representation, at any thread count — the graph backend
//! is an execution detail, never an algorithmic input.
//!
//! The tier-1 tests sweep (solver × size × seed × graph) at scales that
//! finish in seconds; the 1M-vertex sparse acceptance run is `#[ignore]`d
//! (release-build wall clock) and executed explicitly:
//!
//! ```text
//! cargo test --release -p parfaclo-tests --test graph_engine -- --ignored
//! ```

use parfaclo_api::{Backend, GraphBackend, RunConfig};
use parfaclo_bench::runner::{run_solver, GenSpec};
use parfaclo_bench::standard_registry;

/// Every solver the bench matrix fans out over the graph axis.
const GRAPH_SOLVERS: &[&str] = &["maxdom", "mis", "kcenter"];

/// The core conformance sweep: (3 solvers × 2 sizes × 2 seeds) dense-vs-CSR
/// canonical JSON byte-equality on the clustered workload (the one whose
/// threshold graphs have non-trivial component structure).
#[test]
fn graph_solvers_dense_and_csr_byte_identical() {
    let registry = standard_registry();
    for &solver in GRAPH_SOLVERS {
        for n in [48usize, 96] {
            for seed in [3u64, 11] {
                let spec =
                    GenSpec::parse(&format!("clustered:n={n},nf={n},c=4")).expect("valid spec");
                let cfg = RunConfig::new(0.1).with_seed(seed).with_k(4);
                let dense = run_solver(
                    &registry,
                    solver,
                    &spec,
                    &cfg.clone().with_graph(GraphBackend::Dense),
                )
                .expect("dense-graph run");
                let csr = run_solver(
                    &registry,
                    solver,
                    &spec,
                    &cfg.clone().with_graph(GraphBackend::Csr),
                )
                .expect("csr-graph run");
                csr.validate().expect("structurally valid run");
                assert_eq!(
                    dense.canonical_json(),
                    csr.canonical_json(),
                    "'{solver}' diverged across graph backends at n={n}, seed={seed}"
                );
            }
        }
    }
}

/// The sparse workloads dense graphs were never designed for must also be
/// backend-agnostic: power-law hubs and road grids, dense vs CSR.
#[test]
fn sparse_workloads_dense_and_csr_byte_identical() {
    let registry = standard_registry();
    for workload in ["powerlaw", "road"] {
        let spec = GenSpec::parse(&format!("{workload}:n=120,nf=120")).expect("valid spec");
        // Thresholds inside a power-law cluster stay below the 50-unit
        // grid separation; road blocks are 1.0 apart.
        let cfg = RunConfig::new(0.1).with_seed(9).with_threshold(3.0);
        for &solver in &["maxdom", "mis"] {
            let dense = run_solver(
                &registry,
                solver,
                &spec,
                &cfg.clone().with_graph(GraphBackend::Dense),
            )
            .expect("dense-graph run");
            let csr = run_solver(
                &registry,
                solver,
                &spec,
                &cfg.clone().with_graph(GraphBackend::Csr),
            )
            .expect("csr-graph run");
            assert_eq!(
                dense.canonical_json(),
                csr.canonical_json(),
                "'{solver}' diverged across graph backends on '{workload}'"
            );
        }
    }
}

/// CSR runs are thread-count invariant in canonical form: the frontier
/// engine's direction switching and combines must depend only on the
/// graph, never on the worker pool.
#[test]
fn csr_runs_are_thread_count_invariant() {
    let registry = standard_registry();
    let spec = GenSpec::parse("clustered:n=80,nf=80,c=4").expect("valid spec");
    for &solver in GRAPH_SOLVERS {
        let cfg = RunConfig::new(0.1)
            .with_seed(5)
            .with_k(4)
            .with_graph(GraphBackend::Csr);
        let one = run_solver(&registry, solver, &spec, &cfg.clone().with_threads(1)).expect(solver);
        let four =
            run_solver(&registry, solver, &spec, &cfg.clone().with_threads(4)).expect(solver);
        assert_eq!(
            one.canonical_json(),
            four.canonical_json(),
            "'{solver}' on CSR diverged between 1 and 4 threads"
        );
    }
}

/// The graph backend is an execution detail like `Backend` and `threads`:
/// it must not leak into the canonical JSON at all (otherwise dense and
/// CSR artifacts could never be byte-compared).
#[test]
fn graph_backend_never_appears_in_canonical_json() {
    let registry = standard_registry();
    let spec = GenSpec::parse("uniform:n=40,nf=40").expect("valid spec");
    let cfg = RunConfig::new(0.1)
        .with_seed(2)
        .with_k(3)
        .with_graph(GraphBackend::Csr);
    let run = run_solver(&registry, "maxdom", &spec, &cfg).expect("csr run");
    let canon = run.canonical_json();
    assert!(
        !canon.contains("\"graph\"") && !canon.contains("csr"),
        "canonical JSON leaks the graph backend: {canon}"
    );
}

/// The sparse presets parse to their documented shapes and, scaled down,
/// drive a dominator run end to end on the CSR engine across the metric
/// backends.
#[test]
fn sparse_presets_scaled_down_run_on_csr() {
    let spec = GenSpec::parse("sparse-large").expect("sparse-large parses");
    assert_eq!(
        (spec.workload.as_str(), spec.n, spec.nf),
        ("road", 100_000, 100)
    );
    let spec = GenSpec::parse("sparse-xlarge").expect("sparse-xlarge parses");
    assert_eq!(
        (spec.workload.as_str(), spec.n, spec.nf),
        ("powerlaw", 1_000_000, 50)
    );

    let registry = standard_registry();
    let spec = GenSpec::parse("sparse-xlarge:n=600").expect("override parses");
    let cfg = RunConfig::new(0.1)
        .with_seed(7)
        .with_threshold(3.0)
        .with_graph(GraphBackend::Csr);
    let dense_metric = run_solver(&registry, "maxdom", &spec, &cfg).expect("dense-metric run");
    let spatial = run_solver(
        &registry,
        "maxdom",
        &spec,
        &cfg.clone().with_backend(Backend::Spatial),
    )
    .expect("spatial-metric run");
    assert_eq!(
        dense_metric.canonical_json(),
        spatial.canonical_json(),
        "maxdom on CSR diverged across metric backends"
    );
}

/// The acceptance run: a dominator-family solver completes on a 1M-vertex
/// sparse threshold graph with `--graph csr --backend spatial` — the
/// configuration the dense graph (931 GiB of adjacency) and the dense
/// metric (7.6 TiB matrix) can never reach. Ignored by default (release
/// wall clock); run explicitly with `-- --ignored`.
#[test]
#[ignore = "1M-vertex sparse acceptance run (release wall clock); run with -- --ignored"]
fn sparse_xlarge_csr_maxdom_completes() {
    let registry = standard_registry();
    let spec = GenSpec::parse("sparse-xlarge").expect("valid spec");
    // Power-law clusters have radius 1.0 on a 50-unit grid: threshold 3.0
    // keeps every cluster a clique and every pair of clusters disconnected.
    let cfg = RunConfig::new(0.1)
        .with_seed(7)
        .with_threshold(3.0)
        .with_backend(Backend::Spatial)
        .with_graph(GraphBackend::Csr);
    let run = run_solver(&registry, "maxdom", &spec, &cfg).expect("1M csr maxdom run");
    run.validate().expect("structurally valid run");
    assert_eq!(run.n, 1_000_000);
    assert_eq!(run.backend, Backend::Spatial);
    assert!(run.cost > 0.0 && run.cost.is_finite());
}
