//! Conformance tests for the deterministic bucket event engine: the greedy
//! and primal-dual solvers must produce **byte-identical** canonical Run
//! JSON whether their round loops are driven by the historical scan paths
//! (full presort / per-iteration rescans) or the bucket queues (lazy sorted
//! prefixes / popped open-freeze events), under every distance backend and
//! at any thread count — the event engine is a work/latency knob, never an
//! algorithmic input.
//!
//! The tier-1 tests sweep (solver × size × seed × backend × threads) at
//! scales that finish in seconds; the sparse-xlarge k-center sketch
//! acceptance run is `#[ignore]`d (release-build wall clock) and executed
//! explicitly:
//!
//! ```text
//! cargo test --release -p parfaclo-tests --test bucket_conformance -- --ignored
//! ```

use parfaclo_api::{Backend, EventEngine, GraphBackend, RadiusDeriver, RunConfig};
use parfaclo_bench::runner::{run_solver, GenSpec};
use parfaclo_bench::standard_registry;

/// The solvers whose round loops dispatch on the event engine.
const ENGINE_SOLVERS: &[&str] = &["greedy", "primal-dual"];

/// The core conformance sweep: (2 solvers × 2 sizes × 2 seeds × 3 backends
/// × 2 thread counts) scan-vs-bucket canonical JSON byte-equality. The
/// work counters live in the timing section (engines charge differently by
/// design), so canonical equality here asserts every algorithmic output —
/// open set, assignment, costs, α bits, round counts — survives the engine
/// swap bit-for-bit.
#[test]
fn greedy_and_primal_dual_scan_and_bucket_byte_identical() {
    let registry = standard_registry();
    for &solver in ENGINE_SOLVERS {
        for n in [40usize, 80] {
            for seed in [2u64, 9] {
                for backend in [Backend::Dense, Backend::Implicit, Backend::Spatial] {
                    for threads in [1usize, 4] {
                        let spec = GenSpec::parse(&format!("clustered:n={n},nf={},c=4", n / 4))
                            .expect("valid spec");
                        let cfg = RunConfig::new(0.1)
                            .with_seed(seed)
                            .with_backend(backend)
                            .with_threads(threads);
                        let scan = run_solver(
                            &registry,
                            solver,
                            &spec,
                            &cfg.clone().with_engine(EventEngine::Scan),
                        )
                        .expect("scan-engine run");
                        let bucket = run_solver(
                            &registry,
                            solver,
                            &spec,
                            &cfg.clone().with_engine(EventEngine::Bucket),
                        )
                        .expect("bucket-engine run");
                        bucket.validate().expect("structurally valid run");
                        assert_eq!(
                            scan.canonical_json(),
                            bucket.canonical_json(),
                            "'{solver}' diverged across event engines at n={n}, seed={seed}, \
                             backend {backend:?}, {threads} thread(s)"
                        );
                    }
                }
            }
        }
    }
}

/// The ablation knobs must not interact with the engine swap: disabling
/// preprocessing (which changes the dual-level ladder's starting value —
/// the quantity the bucket schedules key on) and subselection must keep the
/// engines byte-equivalent.
#[test]
fn engines_agree_under_ablation_knobs() {
    let registry = standard_registry();
    let spec = GenSpec::parse("uniform:n=60,nf=20").expect("valid spec");
    for &solver in ENGINE_SOLVERS {
        for preprocess in [true, false] {
            for subselection in [true, false] {
                let mut cfg = RunConfig::new(0.2).with_seed(5);
                cfg.preprocess = preprocess;
                cfg.subselection = subselection;
                let scan = run_solver(
                    &registry,
                    solver,
                    &spec,
                    &cfg.clone().with_engine(EventEngine::Scan),
                )
                .expect("scan-engine run");
                let bucket = run_solver(
                    &registry,
                    solver,
                    &spec,
                    &cfg.clone().with_engine(EventEngine::Bucket),
                )
                .expect("bucket-engine run");
                assert_eq!(
                    scan.canonical_json(),
                    bucket.canonical_json(),
                    "'{solver}' diverged (preprocess={preprocess}, subselection={subselection})"
                );
            }
        }
    }
}

/// The k-center sketch radius deriver must be deterministic across thread
/// counts and graph representations (its candidate sample is
/// value-independent and each probe mixes the candidate index into the
/// seed), even though it probes different thresholds than the exact path.
#[test]
fn kcenter_sketch_deterministic_across_threads_and_graphs() {
    let registry = standard_registry();
    let spec = GenSpec::parse("clustered:n=90,nf=90,c=5").expect("valid spec");
    let cfg = RunConfig::new(0.1)
        .with_seed(7)
        .with_k(5)
        .with_radius_deriver(RadiusDeriver::Sketch);
    let reference = run_solver(
        &registry,
        "kcenter",
        &spec,
        &cfg.clone().with_threads(1).with_graph(GraphBackend::Dense),
    )
    .expect("sketch run");
    for threads in [1usize, 4] {
        for graph in [GraphBackend::Dense, GraphBackend::Csr] {
            let run = run_solver(
                &registry,
                "kcenter",
                &spec,
                &cfg.clone().with_threads(threads).with_graph(graph),
            )
            .expect("sketch run");
            assert_eq!(
                reference.canonical_json(),
                run.canonical_json(),
                "kcenter sketch diverged at {threads} thread(s), graph {graph:?}"
            );
        }
    }
}

/// Acceptance: the sketch deriver lifts k-center to the sparse-xlarge
/// preset (1M power-law nodes), where the exact deriver's all-pairs
/// candidate sort is refused at the 4 GiB scratch cap. Deterministic at
/// any thread count; release wall clock, so `#[ignore]`d from tier 1.
#[test]
#[ignore = "1M-node acceptance run: needs --release wall clock (see module docs)"]
fn sparse_xlarge_kcenter_sketch_completes_and_exact_refuses() {
    let registry = standard_registry();
    let spec = GenSpec::parse("sparse-xlarge").expect("valid spec");
    let cfg = RunConfig::new(0.1)
        .with_seed(1)
        .with_k(64)
        .with_backend(Backend::Spatial)
        .with_graph(GraphBackend::Csr);
    let exact = run_solver(
        &registry,
        "kcenter",
        &spec,
        &cfg.clone().with_radius_deriver(RadiusDeriver::Exact),
    );
    assert!(
        exact.is_err(),
        "exact deriver must refuse the 1M-node all-pairs candidate sort"
    );
    let a = run_solver(
        &registry,
        "kcenter",
        &spec,
        &cfg.clone()
            .with_radius_deriver(RadiusDeriver::Sketch)
            .with_threads(1),
    )
    .expect("sketch completes at sparse-xlarge");
    let b = run_solver(
        &registry,
        "kcenter",
        &spec,
        &cfg.clone()
            .with_radius_deriver(RadiusDeriver::Sketch)
            .with_threads(4),
    )
    .expect("sketch completes at sparse-xlarge");
    assert_eq!(a.canonical_json(), b.canonical_json());
    assert!(a.cost > 0.0, "radius must be positive on a spread instance");
}
