//! Scale tests for the spatial index backend: the workloads that motivate
//! the subsystem, end to end through the CLI's own code path (`GenSpec` →
//! generator → registry solver → canonical Run JSON).
//!
//! The tier-1 tests run at a mid scale that finishes in seconds; the full
//! 10M-point `xxlarge` acceptance run is `#[ignore]`d (minutes of wall
//! clock) and executed explicitly by the CI perf job / release checklists:
//!
//! ```text
//! cargo test --release -p parfaclo-tests --test spatial_scale -- --ignored
//! ```

use parfaclo_api::{Backend, RunConfig};
use parfaclo_bench::runner::{run_solver, GenSpec};
use parfaclo_bench::standard_registry;
use parfaclo_metric::gen::{self, GenParams};
use parfaclo_metric::DistanceOracle;

/// Mid-scale greedy through the real runner path: the spatial backend must
/// reproduce the implicit backend's canonical Run JSON byte for byte while
/// reporting point-sized (never matrix-sized) oracle memory. This is the
/// same comparison the xlarge acceptance run makes, at a size tier-1 CI can
/// afford.
#[test]
fn greedy_mid_scale_spatial_matches_implicit_byte_for_byte() {
    let registry = standard_registry();
    let spec = GenSpec::parse("uniform:n=20000,nf=40").expect("valid spec");
    let cfg = RunConfig::new(0.1).with_seed(7);
    let implicit = run_solver(
        &registry,
        "greedy",
        &spec,
        &cfg.clone().with_backend(Backend::Implicit),
    )
    .expect("implicit run");
    let spatial = run_solver(
        &registry,
        "greedy",
        &spec,
        &cfg.clone().with_backend(Backend::Spatial),
    )
    .expect("spatial run");
    assert_eq!(
        implicit.canonical_json(),
        spatial.canonical_json(),
        "spatial backend diverged from implicit at n=20000"
    );
    assert_eq!(spatial.backend, Backend::Spatial);
    // 20040 points: well under a megabyte per side even with index arrays —
    // the 160 MB dense matrix must never be materialised.
    assert!(
        spatial.memory_bytes < 10_000_000,
        "spatial oracle memory {} is not point-sized",
        spatial.memory_bytes
    );
}

/// The `xxlarge` preset parses to the documented 10M × 100 shape and its
/// spatial instance construction works at a scaled-down size through the
/// exact same constructor path (`xxlarge:n=...` override).
#[test]
fn xxlarge_preset_shape_and_scaled_down_construction() {
    let spec = GenSpec::parse("xxlarge").expect("xxlarge parses");
    assert_eq!((spec.n, spec.nf), (10_000_000, 100));
    // Same preset, overridden to a testable size: constructs a spatial
    // instance and serves index-accelerated queries.
    let spec = GenSpec::parse("xxlarge:n=50000").expect("override parses");
    let inst = gen::build_facility_location(spec.params(3), Backend::Spatial).expect("generate");
    assert_eq!(inst.num_clients(), 50_000);
    assert_eq!(inst.num_facilities(), 100);
    let oracle = inst.distances();
    let (nearest, d) = oracle.row_min(12345).expect("nearest facility");
    assert!(nearest < 100 && d.is_finite());
    // Index answer == scan answer on a sampled row.
    let scan = (0..100)
        .map(|i| (i, inst.dist(12345, i)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
        .unwrap();
    assert_eq!((nearest, d), scan);
}

/// The acceptance run: `parfaclo run greedy --gen xxlarge --backend spatial`
/// completes. 10M clients × 100 facilities — only practical because the
/// bipartite-graph, dual-feasibility and assignment phases run through the
/// spatial index instead of O(n) sweeps. Ignored by default (several
/// minutes); run explicitly with `-- --ignored`.
#[test]
#[ignore = "10M-point acceptance run (minutes); run with -- --ignored"]
fn xxlarge_spatial_run_completes() {
    let registry = standard_registry();
    let spec = GenSpec::parse("xxlarge").expect("valid spec");
    let cfg = RunConfig::new(0.25)
        .with_seed(7)
        .with_backend(Backend::Spatial);
    let run = run_solver(&registry, "greedy", &spec, &cfg).expect("xxlarge spatial run");
    run.validate().expect("structurally valid run");
    assert_eq!(run.n, 10_000_000);
    assert_eq!(run.backend, Backend::Spatial);
    assert!(run.cost > 0.0 && run.cost.is_finite());
    // Point-sized memory: ~10M points must stay far under the 8 GB dense
    // matrix (10M × 100 × 8 bytes).
    assert!(run.memory_bytes < 2_000_000_000, "{}", run.memory_bytes);
}

/// Spatial clustering instances serve the threshold-graph and center
/// queries identically to the dense backend at a few thousand nodes (the
/// scale the k-center binary search actually probes).
#[test]
fn clustering_spatial_queries_match_dense_at_scale() {
    let params = GenParams::gaussian_clusters(3000, 3000, 12).with_seed(5);
    let dense = gen::clustering(params);
    let spatial = gen::build_clustering(params, Backend::Spatial).expect("O(n) construction");
    let d_oracle = dense.distances();
    let s_oracle = spatial.distances();
    let radius = d_oracle.max_entry() * 0.05;
    for node in [0usize, 777, 1500, 2999] {
        assert_eq!(
            d_oracle.cols_within(node, radius),
            s_oracle.cols_within(node, radius),
            "node {node}"
        );
        assert_eq!(d_oracle.row_min(node), s_oracle.row_min(node));
    }
    let centers: Vec<usize> = (0..3000).step_by(250).collect();
    assert_eq!(
        dense.center_assignment(&centers),
        spatial.center_assignment(&centers)
    );
    assert_eq!(
        dense.kmedian_cost(&centers).to_bits(),
        spatial.kmedian_cost(&centers).to_bits()
    );
}
