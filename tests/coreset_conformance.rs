//! Conformance tests for the deterministic ε-grid coreset path: byte-level
//! determinism across thread counts and backends, the quality regression
//! against the full-instance solve, and the 10M-point acceptance run.

use parfaclo_api::{Backend, Coreset, RunConfig};
use parfaclo_bench::runner::{run_solver, GenSpec};
use parfaclo_bench::standard_registry;

const CLUSTERING_SOLVERS: [&str; 3] = ["kcenter", "kmedian-ls", "kmeans-ls"];

fn coreset_cfg(eps: f64) -> RunConfig {
    RunConfig::new(0.1)
        .with_seed(7)
        .with_k(4)
        .with_coreset(Coreset::Eps(eps))
}

/// The coreset build is a sequential pass plus a sort, so the canonical Run
/// JSON — centers, assignment, both costs, rounds, extras — is
/// byte-identical at any pool size.
#[test]
fn coreset_runs_are_thread_count_invariant() {
    let registry = standard_registry();
    let spec = GenSpec::parse("clustered:n=600").unwrap();
    for solver in CLUSTERING_SOLVERS {
        let base = coreset_cfg(0.1).with_backend(Backend::Spatial);
        let one = run_solver(&registry, solver, &spec, &base.clone().with_threads(1)).unwrap();
        let four = run_solver(&registry, solver, &spec, &base.with_threads(4)).unwrap();
        assert_eq!(
            one.canonical_json(),
            four.canonical_json(),
            "{solver}: coreset run differs between 1 and 4 threads"
        );
    }
}

/// The coreset representatives are medoids (actual input points), so their
/// pairwise distances — and everything downstream — are bit-identical under
/// every distance backend.
#[test]
fn coreset_runs_are_backend_invariant() {
    let registry = standard_registry();
    let spec = GenSpec::parse("uniform:n=500").unwrap();
    for solver in CLUSTERING_SOLVERS {
        let runs: Vec<String> = [Backend::Dense, Backend::Implicit, Backend::Spatial]
            .into_iter()
            .map(|b| {
                run_solver(&registry, solver, &spec, &coreset_cfg(0.2).with_backend(b))
                    .unwrap()
                    .canonical_json()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "{solver}: dense vs implicit");
        assert_eq!(runs[1], runs[2], "{solver}: implicit vs spatial");
    }
}

/// Quality regression: across two instance sizes and two seeds, the
/// full-set cost of the hierarchical coreset solve stays within a pinned
/// factor of the direct (`--coreset off`) solve, and the factor tightens as
/// ε shrinks. The pinned factors are empirical for these workloads — the
/// documented guidance (README "Coresets") is ε ≤ 0.25 for a ≤1.5x k-median
/// cost ratio; k-center is a max objective and is pinned looser.
#[test]
fn coreset_eps_sweep_quality_vs_full_solve() {
    let registry = standard_registry();
    for solver in ["kmedian-ls", "kcenter"] {
        // Max objective (one point decides the cost) vs sum objective
        // (grid-snap error averages out): pin them separately.
        let cap = if solver == "kcenter" { 2.0 } else { 1.5 };
        for n in [400usize, 1200] {
            for seed in [3u64, 11] {
                let spec = GenSpec::parse(&format!("uniform:n={n}")).unwrap();
                let base = RunConfig::new(0.1).with_seed(seed).with_k(4);
                let off = run_solver(&registry, solver, &spec, &base).unwrap();
                assert!(off.cost > 0.0);
                for eps in [0.5, 0.25, 0.1] {
                    let run = run_solver(
                        &registry,
                        solver,
                        &spec,
                        &base.clone().with_coreset(Coreset::Eps(eps)),
                    )
                    .unwrap();
                    run.validate().expect("valid envelope");
                    let ratio = run.cost / off.cost;
                    assert!(ratio.is_finite() && ratio > 0.0);
                    // No monotonicity claim across ε — both solves are
                    // local searches, so a finer grid can land in a worse
                    // local optimum — only the pinned ceiling.
                    if eps <= 0.25 {
                        assert!(
                            ratio <= cap,
                            "{solver} n={n} seed={seed} eps={eps}: \
                             full-set cost ratio {ratio:.3} exceeds the pinned {cap}"
                        );
                    }
                }
            }
        }
    }
}

/// The coreset-internal cost is reported alongside the full-set cost, and
/// the envelope echoes the coreset parameters, so the Run JSON alone
/// documents the approximation being made.
#[test]
fn coreset_run_json_carries_both_costs() {
    let registry = standard_registry();
    let spec = GenSpec::parse("uniform:n=300").unwrap();
    let run = run_solver(&registry, "kmedian-ls", &spec, &coreset_cfg(0.2)).unwrap();
    let json = run.canonical_json();
    for key in ["coreset_cost", "coreset_size", "coreset_eps"] {
        assert!(json.contains(key), "canonical JSON lacks '{key}': {json}");
    }
    // And the off path stays byte-identical to the historical output —
    // no coreset keys leak into it.
    let off = run_solver(
        &registry,
        "kmedian-ls",
        &spec,
        &coreset_cfg(0.2).with_coreset(Coreset::Off),
    )
    .unwrap();
    assert!(!off.canonical_json().contains("coreset"));
}

/// Without a coreset the local searches refuse xxlarge-scale inputs (the
/// swap sweep is O(n²k) per round) and the error points at the knob.
#[test]
fn direct_local_search_refuses_scale_and_points_at_coreset() {
    let registry = standard_registry();
    let spec = GenSpec::parse("uniform:n=40000,nf=10").unwrap();
    let cfg = RunConfig::new(0.1)
        .with_seed(1)
        .with_k(4)
        .with_backend(Backend::Implicit);
    let err = run_solver(&registry, "kmedian-ls", &spec, &cfg).unwrap_err();
    assert!(err.contains("--coreset eps:<f64>"), "{err}");
    // The same spec solves with the coreset enabled.
    let run = run_solver(
        &registry,
        "kmedian-ls",
        &spec,
        &cfg.with_coreset(Coreset::Eps(0.1)),
    )
    .unwrap();
    assert_eq!(run.assignment.len(), 40_000);
}

/// The acceptance run: `parfaclo run kmedian-local --gen xxlarge --backend
/// spatial --coreset eps:0.1` completes — 10M points solved hierarchically
/// (the direct path refuses this scale outright). Ignored by default
/// (minutes); run explicitly with `-- --ignored`.
#[test]
#[ignore = "10M-point acceptance run (minutes); run with -- --ignored"]
fn xxlarge_coreset_run_completes() {
    let registry = standard_registry();
    let spec = GenSpec::parse("xxlarge").unwrap();
    let cfg = RunConfig::new(0.1)
        .with_seed(7)
        .with_k(8)
        .with_backend(Backend::Spatial)
        .with_coreset(Coreset::Eps(0.1));
    let run = run_solver(&registry, "kmedian-ls", &spec, &cfg).expect("xxlarge coreset run");
    run.validate().expect("structurally valid run");
    assert_eq!(run.n, 10_000_000);
    assert_eq!(run.assignment.len(), 10_000_000);
    assert_eq!(run.backend, Backend::Spatial);
    assert!(run.cost > 0.0 && run.cost.is_finite());
    // The non-coreset path refuses the same configuration.
    let err = run_solver(
        &registry,
        "kmedian-ls",
        &spec,
        &cfg.with_coreset(Coreset::Off),
    )
    .unwrap_err();
    assert!(err.contains("--coreset"), "{err}");
}
